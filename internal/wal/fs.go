// Package wal provides SilkMoth's durability layer: a sequence-numbered
// snapshot + write-ahead-log store over a small filesystem abstraction.
// Snapshots are written whole (temp file, fsync, atomic rename, directory
// sync); mutations between snapshots are appended to the paired log as
// checksummed, fsync'd records and replayed over the latest snapshot on
// startup. The FS seam exists so the crash-injection harness
// (internal/wal/failfs) can abort the store at every write and sync point
// and prove recovery correct from each resulting disk image.
package wal

import (
	"io"
	"os"
	"path/filepath"

	"silkmoth/internal/mmap"
)

// File is the writable-file surface the store needs. Write buffers like an
// OS file; only Sync makes the written bytes durable.
type File interface {
	io.Writer
	// Sync makes every byte written so far durable.
	Sync() error
	// Close releases the handle. Close does not imply Sync.
	Close() error
}

// FS is the flat-directory filesystem surface the store runs on. Names are
// bare file names (no separators); the implementation anchors them to its
// root. Directory-entry operations (Create, Rename, Remove, Truncate) are
// only durable after a SyncDir, mirroring POSIX semantics — the
// crash-injection FS enforces exactly that.
type FS interface {
	// Create creates or truncates name for writing.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// List returns the names of all files in the directory.
	List() ([]string, error)
	// SyncDir makes preceding directory-entry operations durable.
	SyncDir() error
}

// MapFS is an optional capability an FS may add: exposing a file as a
// read-only memory mapping. Store.RecoverData uses it when present and
// falls back to Open+ReadAll when absent (the crash-injection FS, for one,
// deliberately lacks it), so implementations are never required.
type MapFS interface {
	// Map returns name's contents as a read-only Mapping. The caller owns
	// the mapping and must Close it.
	Map(name string) (*mmap.Mapping, error)
}

// dirFS is the production FS: a real directory on the OS filesystem.
type dirFS struct {
	root string
}

// DirFS returns an FS rooted at path, creating the directory if needed.
func DirFS(path string) (FS, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	return &dirFS{root: path}, nil
}

func (d *dirFS) join(name string) string { return filepath.Join(d.root, name) }

func (d *dirFS) Create(name string) (File, error) {
	return os.OpenFile(d.join(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (d *dirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(d.join(name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (d *dirFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(d.join(name))
}

func (d *dirFS) Map(name string) (*mmap.Mapping, error) {
	return mmap.Open(d.join(name))
}

func (d *dirFS) Rename(oldname, newname string) error {
	return os.Rename(d.join(oldname), d.join(newname))
}

func (d *dirFS) Remove(name string) error {
	return os.Remove(d.join(name))
}

func (d *dirFS) Truncate(name string, size int64) error {
	return os.Truncate(d.join(name), size)
}

func (d *dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (d *dirFS) SyncDir() error {
	f, err := os.Open(d.root)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
