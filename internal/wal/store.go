package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"silkmoth/internal/mmap"
)

// Store manages a flat directory of sequence-numbered snapshot/log pairs:
// snap-<seq>.snap holds a full engine image, wal-<seq>.log the mutation
// records appended after it. Recovery loads the newest loadable snapshot
// and replays its paired log; writing a new snapshot retires the previous
// pair. The caller (the public engine) serializes Append, WriteSnapshot,
// and Close under its write lock; the record counters are atomics so
// stats readers need no lock.
type Store struct {
	fsys FS
	// seq is the current pair's sequence number; 0 means no snapshot has
	// ever been written (an empty store).
	seq uint64
	// log is the open handle of wal-<seq>.log, nil until Begin or the
	// first WriteSnapshot.
	log File
	// broken latches the first append failure: a log whose tail state is
	// unknown (a failed write or sync) must not receive further records,
	// or replay could resurrect the failed one under later ids.
	broken error
	closed bool

	appended  atomic.Int64 // records appended by this process
	snapshots atomic.Int64 // snapshots written by this process
}

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("wal: store is closed")

func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }
func logName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%d", &seq); err != nil || mid == "" {
		return 0, false
	}
	return seq, true
}

// Open scans fsys for existing snapshot/log pairs. It performs no
// destructive operation: leftover temp files from an interrupted snapshot
// are removed only once a later WriteSnapshot succeeds them, and the
// choice of which snapshot to load belongs to Recover.
func Open(fsys FS) (*Store, error) {
	s := &Store{fsys: fsys}
	seqs, err := s.snapshotSeqs()
	if err != nil {
		return nil, err
	}
	if len(seqs) > 0 {
		s.seq = seqs[0]
	}
	return s, nil
}

// snapshotSeqs returns the available snapshot sequence numbers, newest
// first.
func (s *Store) snapshotSeqs() ([]uint64, error) {
	names, err := s.fsys.List()
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, n := range names {
		if seq, ok := parseSeq(n, "snap-", ".snap"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// Recover walks the store's snapshots newest-first, calling load on each
// until one succeeds; the store's sequence then points at it, so ReplayWAL
// replays its paired log. It returns (false, nil) on an empty store. When
// snapshots exist but none loads, the newest one's error is returned —
// under the store's crash discipline a renamed snapshot is always fully
// synced, so an unloadable one is real corruption, not a crash artifact.
func (s *Store) Recover(load func(io.Reader) error) (bool, error) {
	seqs, err := s.snapshotSeqs()
	if err != nil {
		return false, err
	}
	var firstErr error
	for _, seq := range seqs {
		rc, err := s.fsys.Open(snapName(seq))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		err = load(rc)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			s.seq = seq
			return true, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return false, fmt.Errorf("wal: no loadable snapshot: %w", firstErr)
	}
	return false, nil
}

// RecoverData is Recover for loaders that consume the snapshot as one byte
// slice: each candidate is memory-mapped when the FS supports it (zero-copy
// — the loader can keep sub-slices of the image alive) and read whole
// otherwise. On success the returned Mapping backs the bytes that were
// handed to load; the caller owns it and must keep it open for as long as
// any slice of the image is referenced, then Close it. Mappings for
// candidates that failed to load are closed here. Returns (false, nil, nil)
// on an empty store.
func (s *Store) RecoverData(load func(data []byte) error) (bool, *mmap.Mapping, error) {
	seqs, err := s.snapshotSeqs()
	if err != nil {
		return false, nil, err
	}
	var firstErr error
	for _, seq := range seqs {
		m, err := s.openSnapshotData(seq)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := load(m.Data()); err != nil {
			if cerr := m.Close(); cerr != nil && firstErr == nil {
				firstErr = cerr
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.seq = seq
		return true, m, nil
	}
	if firstErr != nil {
		return false, nil, fmt.Errorf("wal: no loadable snapshot: %w", firstErr)
	}
	return false, nil, nil
}

// openSnapshotData maps snapshot seq when the FS can, else reads it whole.
// A mapping failure on a readable file degrades to the read path rather
// than failing recovery.
func (s *Store) openSnapshotData(seq uint64) (*mmap.Mapping, error) {
	name := snapName(seq)
	if mf, ok := s.fsys.(MapFS); ok {
		if m, err := mf.Map(name); err == nil {
			return m, nil
		}
	}
	rc, err := s.fsys.Open(name)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return mmap.FromBytes(data), nil
}

// ReplayWAL decodes the current pair's log and applies each record in
// order. A torn tail — an incomplete or checksum-failing final record, the
// expected shape after a crash mid-append — stops replay cleanly: the log
// is truncated back to its valid prefix (so future appends extend intact
// history) and torn reports it happened. Corruption before the tail, or an
// apply error, aborts with an error. A missing log file replays zero
// records (the crash window between snapshot rename and log creation).
func (s *Store) ReplayWAL(apply func(*Record) error) (replayed int, torn bool, err error) {
	if s.seq == 0 {
		return 0, false, nil
	}
	name := logName(s.seq)
	rc, err := s.fsys.Open(name)
	if err != nil {
		return 0, false, nil
	}
	buf, err := io.ReadAll(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, false, err
	}
	off := 0
	for off < len(buf) {
		rec, n, err := DecodeRecord(buf[off:])
		if errors.Is(err, ErrTorn) {
			torn = true
			break
		}
		if err != nil {
			return replayed, false, fmt.Errorf("wal: record %d: %w", replayed, err)
		}
		if err := apply(&rec); err != nil {
			return replayed, false, fmt.Errorf("wal: applying record %d: %w", replayed, err)
		}
		replayed++
		off += n
	}
	if torn {
		if err := s.fsys.Truncate(name, int64(off)); err != nil {
			return replayed, true, err
		}
		if err := s.fsys.SyncDir(); err != nil {
			return replayed, true, err
		}
	}
	return replayed, torn, nil
}

// Begin opens the current pair's log for appending, creating it if the
// crash window left it missing, and makes its directory entry durable.
// Call it after Recover/ReplayWAL; WriteSnapshot opens its own log.
func (s *Store) Begin() error {
	if s.closed {
		return ErrClosed
	}
	if s.seq == 0 {
		return errors.New("wal: Begin before any snapshot")
	}
	if s.log != nil {
		return nil
	}
	f, err := s.fsys.OpenAppend(logName(s.seq))
	if err != nil {
		return err
	}
	if err := s.fsys.SyncDir(); err != nil {
		return errors.Join(err, f.Close())
	}
	s.log = f
	return nil
}

// Append encodes rec, writes it to the active log, and fsyncs before
// returning: a nil error means the mutation is durable. Any failure
// latches the log broken — the tail state on disk is unknown, so no
// further records may follow it.
func (s *Store) Append(rec *Record) error {
	if s.closed {
		return ErrClosed
	}
	if s.broken != nil {
		return fmt.Errorf("wal: log is broken by earlier failure: %w", s.broken)
	}
	if s.log == nil {
		return errors.New("wal: no active log (call Begin or WriteSnapshot first)")
	}
	frame := AppendRecord(nil, rec)
	if _, err := s.log.Write(frame); err != nil {
		s.broken = err
		return err
	}
	if err := s.log.Sync(); err != nil {
		s.broken = err
		return err
	}
	s.appended.Add(1)
	return nil
}

// WriteSnapshot atomically installs a new snapshot/log pair: write writes
// the image to a temp file, which is fsync'd, renamed into place, and made
// durable with a directory sync before an empty successor log is created;
// only then is the previous pair removed (best-effort — stale pairs are
// harmless, recovery picks the newest). On success the store's appends go
// to the new log. On failure the old pair — and, unless the failure hit
// the old log itself, the old log handle — remain active.
func (s *Store) WriteSnapshot(write func(w io.Writer) error) error {
	if s.closed {
		return ErrClosed
	}
	next := s.seq + 1
	tmp := snapName(next) + ".tmp"
	f, err := s.fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fsys.Rename(tmp, snapName(next)); err != nil {
		return err
	}
	if err := s.fsys.SyncDir(); err != nil {
		return err
	}
	// The snapshot is durable; open its empty log and make the entry
	// durable before acknowledging, so records appended next cannot land
	// in a file a crash could unlink.
	lf, err := s.fsys.Create(logName(next))
	if err != nil {
		return err
	}
	if err := s.fsys.SyncDir(); err != nil {
		return errors.Join(err, lf.Close())
	}
	if s.log != nil {
		// The retired log's tail is already superseded by the durable
		// snapshot; a close failure here cannot un-acknowledge anything.
		s.log.Close() //silkmothlint:ignore fsyncerr retired log, rotation is already durable
	}
	prev := s.seq
	s.seq = next
	s.log = lf
	s.broken = nil
	s.snapshots.Add(1)
	if prev > 0 {
		// Best-effort retirement; a crash mid-removal leaves extra files
		// recovery simply ignores.
		s.fsys.Remove(snapName(prev))
		s.fsys.Remove(logName(prev))
		s.fsys.SyncDir() //silkmothlint:ignore fsyncerr best-effort retirement of a superseded pair
	}
	return nil
}

// Seq returns the current snapshot sequence number (0 = empty store).
func (s *Store) Seq() uint64 { return s.seq }

// Appended returns the number of records this process appended.
func (s *Store) Appended() int64 { return s.appended.Load() }

// Snapshots returns the number of snapshots this process wrote.
func (s *Store) Snapshots() int64 { return s.snapshots.Load() }

// Close releases the active log handle. The store refuses further writes.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.log != nil {
		err := s.log.Close()
		s.log = nil
		return err
	}
	return nil
}
