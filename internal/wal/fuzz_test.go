package wal

import (
	"errors"
	"testing"
)

// FuzzWALRecord: arbitrary bytes must decode to a record, ErrTorn, or a
// structural error — never a panic, and never an allocation driven by an
// unvalidated count (set and element counts are capped against remaining
// payload bytes before any make). A successful decode must re-encode to a
// frame that decodes back identically.
func FuzzWALRecord(f *testing.F) {
	for _, rec := range testRecords() {
		f.Add(AppendRecord(nil, &rec))
	}
	f.Add([]byte{})
	f.Add(make([]byte, recordHeaderSize))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // huge declared length
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error path consumed %d bytes", n)
			}
			return
		}
		if n < recordHeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Round-trip: re-encoding the decoded record must reproduce a
		// decodable frame with the same content.
		frame := AppendRecord(nil, &rec)
		rec2, n2, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if n2 != len(frame) {
			t.Fatalf("re-encoded frame consumed %d of %d bytes", n2, len(frame))
		}
		if rec2.Op != rec.Op || rec2.ID != rec.ID || len(rec2.Sets) != len(rec.Sets) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", rec2, rec)
		}
		for i := range rec.Sets {
			if rec2.Sets[i].Name != rec.Sets[i].Name || len(rec2.Sets[i].Elements) != len(rec.Sets[i].Elements) {
				t.Fatalf("round-trip set %d mismatch", i)
			}
			for j := range rec.Sets[i].Elements {
				if rec2.Sets[i].Elements[j] != rec.Sets[i].Elements[j] {
					t.Fatalf("round-trip set %d element %d mismatch", i, j)
				}
			}
		}
	})
}

// FuzzWALReplay: a log assembled from arbitrary bytes must replay without
// panicking, and the torn/hard-error split must be stable: bytes after the
// first torn point never surface as records.
func FuzzWALReplay(f *testing.F) {
	var log []byte
	for _, rec := range testRecords() {
		log = AppendRecord(log, &rec)
	}
	f.Add(log)
	f.Add(log[:len(log)-3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		off, records := 0, 0
		for off < len(data) {
			_, n, err := DecodeRecord(data[off:])
			if errors.Is(err, ErrTorn) {
				return
			}
			if err != nil {
				return
			}
			if n <= 0 {
				t.Fatal("decode made no progress")
			}
			off += n
			records++
			if records > len(data) {
				t.Fatal("more records than bytes")
			}
		}
	})
}
