package wal

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
)

// RecoverData mirrors Recover but hands the loader the snapshot as bytes —
// memory-mapped over dirFS — and transfers mapping ownership on success.
func TestStoreRecoverData(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("image-bytes")); err != nil {
		t.Fatal(err)
	}
	wantSeq := st.Seq()
	st.Close()

	st2 := openDir(t, dir)
	var img string
	loaded, m, err := st2.RecoverData(func(data []byte) error {
		img = string(data)
		return nil
	})
	if err != nil || !loaded {
		t.Fatalf("RecoverData = (%v, %v), want (true, nil)", loaded, err)
	}
	if img != "image-bytes" {
		t.Fatalf("recovered image %q", img)
	}
	if m == nil {
		t.Fatal("no mapping returned")
	}
	if runtime.GOOS == "linux" && !m.Mapped() {
		t.Error("dirFS recovery should produce a real mapping on linux")
	}
	if string(m.Data()) != "image-bytes" {
		t.Error("mapping data does not back the loaded image")
	}
	if st2.Seq() != wantSeq {
		t.Fatalf("Seq = %d, want %d", st2.Seq(), wantSeq)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRecoverDataEmpty(t *testing.T) {
	st := openDir(t, t.TempDir())
	loaded, m, err := st.RecoverData(func([]byte) error {
		t.Fatal("load on empty store")
		return nil
	})
	if loaded || m != nil || err != nil {
		t.Fatalf("empty store = (%v, %v, %v)", loaded, m, err)
	}
}

// A newer unloadable snapshot falls back to the older one, and the failed
// candidate's mapping is closed internally.
func TestStoreRecoverDataFallback(t *testing.T) {
	dir := t.TempDir()
	st := openDir(t, dir)
	if err := st.WriteSnapshot(writeString("old")); err != nil {
		t.Fatal(err)
	}
	fsys, _ := DirFS(dir)
	f, err := fsys.Create(snapName(st.Seq() + 1))
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "garbage")
	f.Sync()
	f.Close()
	fsys.SyncDir()

	st2 := openDir(t, dir)
	loaded, m, err := st2.RecoverData(func(data []byte) error {
		if string(data) != "old" {
			return fmt.Errorf("unloadable image %q", data)
		}
		return nil
	})
	if err != nil || !loaded || string(m.Data()) != "old" {
		t.Fatalf("fallback RecoverData = (%v, %v)", loaded, err)
	}
	m.Close()

	st3 := openDir(t, dir)
	if _, _, err := st3.RecoverData(func([]byte) error { return errors.New("nope") }); err == nil {
		t.Fatal("RecoverData with no loadable snapshot should error")
	}
}
