// Package failfs is an in-memory implementation of wal.FS that models
// power loss precisely enough to prove recovery correct. It distinguishes
// three durability layers a real OS has:
//
//   - file content that has been fsync'd (survives any crash),
//   - file content written but not yet synced (an arbitrary prefix may
//     survive — the torn tail),
//   - directory entries created/renamed/removed but not yet followed by a
//     directory sync (each pending entry op may or may not have reached
//     disk, in order).
//
// Every mutating filesystem operation — write, file sync, create, rename,
// remove, directory sync — is one numbered injection point. Arming FailAt(k)
// makes the k-th operation crash the filesystem: the op applies partially
// (a deterministic prefix), every later operation fails with ErrCrashed,
// and Disk() then yields the post-crash durable image for recovery to run
// against. Enumerating k over a deterministic workload therefore covers
// every write/sync point the store has.
package failfs

import (
	"bytes"
	"errors"
	"io"
	"sort"
	"sync"

	"silkmoth/internal/wal"
)

// ErrCrashed is returned by every operation after the injected crash: the
// process owning the filesystem is dead.
var ErrCrashed = errors.New("failfs: crashed")

type memFile struct {
	synced   []byte // durable content
	unsynced []byte // written, not yet fsync'd
}

// nsOp is one directory-entry operation pending a directory sync.
type nsOp struct {
	kind byte // 'c' create, 'r' rename, 'd' remove
	name string
	to   string   // rename target
	file *memFile // create: the (possibly truncating) new object
}

// FS is the crash-injecting filesystem. Use New; the zero value is not
// ready.
type FS struct {
	mu      sync.Mutex
	live    map[string]*memFile // namespace as the running process sees it
	durable map[string]*memFile // namespace as of the last directory sync
	pending []nsOp              // entry ops since the last directory sync
	ops     int
	failAt  int // crash at op index failAt; -1 disables injection
	crashed bool
	rng     uint64 // deterministic partial-effect source, seeded by failAt
}

var _ wal.FS = (*FS)(nil)

// New returns an empty filesystem with injection disabled.
func New() *FS {
	return &FS{
		live:    map[string]*memFile{},
		durable: map[string]*memFile{},
		failAt:  -1,
	}
}

// FailAt arms the filesystem to crash at operation index k (0-based,
// counting every mutating operation).
func (f *FS) FailAt(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = k
	f.rng = uint64(k)*0x9e3779b97f4a7c15 + 1
}

// Ops returns the number of mutating operations performed so far.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the injected crash has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Crash forces the crash now, as if power failed between operations.
// No-op if already crashed.
func (f *FS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.crash()
	}
}

// rand returns the next deterministic pseudo-random value (xorshift64).
func (f *FS) rand() uint64 {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return f.rng
}

// crash collapses the filesystem to a post-power-loss image: a prefix of
// the pending entry ops is applied to the durable namespace, and each
// surviving file keeps its synced content plus a prefix of its unsynced
// tail. Callers hold the lock.
func (f *FS) crash() {
	f.crashed = true
	keep := 0
	if len(f.pending) > 0 {
		keep = int(f.rand() % uint64(len(f.pending)+1))
	}
	ns := make(map[string]*memFile, len(f.durable))
	for n, mf := range f.durable {
		ns[n] = mf
	}
	for _, op := range f.pending[:keep] {
		applyNsOp(ns, op)
	}
	// Sorted iteration keeps the per-file torn prefixes deterministic: map
	// order would consume the rng in a different order each run.
	names := make([]string, 0, len(ns))
	for n := range ns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		mf := ns[n]
		if len(mf.unsynced) > 0 {
			cut := int(f.rand() % uint64(len(mf.unsynced)+1))
			mf.synced = append(mf.synced, mf.unsynced[:cut]...)
		}
		mf.unsynced = nil
	}
	f.live = ns
	f.durable = ns
	f.pending = nil
}

func applyNsOp(ns map[string]*memFile, op nsOp) {
	switch op.kind {
	case 'c':
		ns[op.name] = op.file
	case 'r':
		if mf, ok := ns[op.name]; ok {
			ns[op.to] = mf
			delete(ns, op.name)
		}
	case 'd':
		delete(ns, op.name)
	}
}

// step gates one mutating operation: it fails permanently after a crash
// and fires the armed crash when the op counter reaches failAt. partial,
// when non-nil, applies the op's partial effect before the lights go out.
// Callers hold the lock.
func (f *FS) step(partial func()) error {
	if f.crashed {
		return ErrCrashed
	}
	if f.ops == f.failAt {
		if partial != nil {
			partial()
		}
		f.crash()
		return ErrCrashed
	}
	f.ops++
	return nil
}

// Disk returns a fresh filesystem over the current post-crash durable
// image (forcing the crash first if it has not fired), with injection
// disabled — the disk a restarted process would mount. Contents are
// deep-copied, so recovery's writes never alias the original.
func (f *FS) Disk() *FS {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.crashed {
		f.crash()
	}
	d := New()
	for n, mf := range f.live {
		c := &memFile{synced: append([]byte(nil), mf.synced...)}
		d.live[n] = c
		d.durable[n] = c
	}
	return d
}

type failFile struct {
	fs *FS
	mf *memFile
}

func (w *failFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	err := w.fs.step(func() {
		cut := int(w.fs.rand() % uint64(len(p)+1))
		w.mf.unsynced = append(w.mf.unsynced, p[:cut]...)
	})
	if err != nil {
		return 0, err
	}
	w.mf.unsynced = append(w.mf.unsynced, p...)
	return len(p), nil
}

func (w *failFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	err := w.fs.step(func() {
		cut := int(w.fs.rand() % uint64(len(w.mf.unsynced)+1))
		w.mf.synced = append(w.mf.synced, w.mf.unsynced[:cut]...)
		w.mf.unsynced = w.mf.unsynced[cut:]
	})
	if err != nil {
		return err
	}
	w.mf.synced = append(w.mf.synced, w.mf.unsynced...)
	w.mf.unsynced = nil
	return nil
}

// Close is not a durability event: unsynced bytes stay attached to the
// file and survive only as far as a later crash's torn prefix allows.
func (w *failFile) Close() error { return nil }

// Create creates or truncates name. The new (empty) entry is pending
// until the next SyncDir.
func (f *FS) Create(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(nil); err != nil {
		return nil, err
	}
	mf := &memFile{}
	f.live[name] = mf
	f.pending = append(f.pending, nsOp{kind: 'c', name: name, file: mf})
	return &failFile{fs: f, mf: mf}, nil
}

// OpenAppend opens name for appending, creating it if absent (creation is
// a pending entry op, like Create).
func (f *FS) OpenAppend(name string) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(nil); err != nil {
		return nil, err
	}
	mf, ok := f.live[name]
	if !ok {
		mf = &memFile{}
		f.live[name] = mf
		f.pending = append(f.pending, nsOp{kind: 'c', name: name, file: mf})
	}
	return &failFile{fs: f, mf: mf}, nil
}

// Open returns a reader over name's full content (synced + unsynced) as
// of the call — the running process sees its own writes.
func (f *FS) Open(name string) (io.ReadCloser, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	mf, ok := f.live[name]
	if !ok {
		return nil, &notExistError{name: name}
	}
	buf := make([]byte, 0, len(mf.synced)+len(mf.unsynced))
	buf = append(buf, mf.synced...)
	buf = append(buf, mf.unsynced...)
	return io.NopCloser(bytes.NewReader(buf)), nil
}

type notExistError struct{ name string }

func (e *notExistError) Error() string { return "failfs: file does not exist: " + e.name }

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(nil); err != nil {
		return err
	}
	mf, ok := f.live[oldname]
	if !ok {
		return &notExistError{name: oldname}
	}
	f.live[newname] = mf
	delete(f.live, oldname)
	f.pending = append(f.pending, nsOp{kind: 'r', name: oldname, to: newname})
	return nil
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(nil); err != nil {
		return err
	}
	if _, ok := f.live[name]; !ok {
		return &notExistError{name: name}
	}
	delete(f.live, name)
	f.pending = append(f.pending, nsOp{kind: 'd', name: name})
	return nil
}

// Truncate cuts name to size. It is used by recovery to drop a torn log
// tail; the cut applies to the durable view directly (recovery runs on a
// freshly mounted disk with nothing unsynced).
func (f *FS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(nil); err != nil {
		return err
	}
	mf, ok := f.live[name]
	if !ok {
		return &notExistError{name: name}
	}
	if n := int(size); n <= len(mf.synced) {
		mf.synced = mf.synced[:n]
		mf.unsynced = nil
	} else if rest := n - len(mf.synced); rest <= len(mf.unsynced) {
		mf.unsynced = mf.unsynced[:rest]
	}
	return nil
}

func (f *FS) List() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(f.live))
	for n := range f.live {
		names = append(names, n)
	}
	return names, nil
}

// SyncDir makes every pending entry operation durable.
func (f *FS) SyncDir() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.step(nil); err != nil {
		return err
	}
	ns := make(map[string]*memFile, len(f.live))
	for n, mf := range f.live {
		ns[n] = mf
	}
	f.durable = ns
	f.pending = nil
	return nil
}
