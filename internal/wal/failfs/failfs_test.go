package failfs

import (
	"errors"
	"io"
	"testing"
)

func readFile(t *testing.T, f *FS, name string) string {
	t.Helper()
	rc, err := f.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func exists(f *FS, name string) bool {
	rc, err := f.Open(name)
	if err != nil {
		return false
	}
	rc.Close()
	return true
}

// Synced content survives any crash; unsynced content survives only as a
// prefix; pending directory entries survive only as an in-order prefix.
func TestDurabilityLayers(t *testing.T) {
	fs := New()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-tail")); err != nil {
		t.Fatal(err)
	}
	// An entry op pending since the directory sync.
	if _, err := fs.Create("b"); err != nil {
		t.Fatal(err)
	}

	fs.Crash()
	disk := fs.Disk()
	got := readFile(t, disk, "a")
	if len(got) < len("synced") || got[:len("synced")] != "synced" {
		t.Fatalf("synced content lost: %q", got)
	}
	if len(got) > len("synced-tail") {
		t.Fatalf("content grew past what was written: %q", got)
	}
	// b may or may not exist (pending create); either is a legal crash
	// outcome, but if it exists it must be empty (nothing synced into it).
	if exists(disk, "b") && readFile(t, disk, "b") != "" {
		t.Fatalf("pending-create file has content: %q", readFile(t, disk, "b"))
	}
}

// After the armed crash fires, every operation fails with ErrCrashed.
func TestCrashIsSticky(t *testing.T) {
	fs := New()
	fs.FailAt(1)             // the Write below is op 1
	f, err := fs.Create("a") // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed write = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not latch")
	}
	if _, err := fs.Create("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create = %v, want ErrCrashed", err)
	}
	if err := fs.SyncDir(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash syncdir = %v, want ErrCrashed", err)
	}
	if _, err := fs.Open("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
}

// A rename that was directory-synced survives; one still pending may
// survive or not, but never leaves both names present.
func TestRenameAtomicity(t *testing.T) {
	for k := 0; k < 20; k++ {
		fs := New()
		f, _ := fs.Create("tmp")
		f.Write([]byte("img"))
		f.Sync()
		fs.SyncDir()
		fs.FailAt(fs.Ops() + 1) // crash on the SyncDir after the rename
		if err := fs.Rename("tmp", "final"); err != nil {
			t.Fatal(err)
		}
		fs.SyncDir() // fires the crash
		disk := fs.Disk()
		tmpThere, finalThere := exists(disk, "tmp"), exists(disk, "final")
		if tmpThere == finalThere {
			t.Fatalf("k=%d: rename must leave exactly one name, got tmp=%v final=%v", k, tmpThere, finalThere)
		}
		if finalThere && readFile(t, disk, "final") != "img" {
			t.Fatalf("k=%d: renamed file content %q", k, readFile(t, disk, "final"))
		}
		if tmpThere && readFile(t, disk, "tmp") != "img" {
			t.Fatalf("k=%d: unrenamed file content %q", k, readFile(t, disk, "tmp"))
		}
	}
}

// Disk() deep-copies: recovery-side writes must not leak back.
func TestDiskIsolation(t *testing.T) {
	fs := New()
	f, _ := fs.Create("a")
	f.Write([]byte("orig"))
	f.Sync()
	fs.SyncDir()
	d1 := fs.Disk()
	g, err := d1.OpenAppend("a")
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte("-more"))
	g.Sync()
	d2 := fs.Disk()
	if got := readFile(t, d2, "a"); got != "orig" {
		t.Fatalf("write on one Disk leaked into another: %q", got)
	}
}

// The same failAt must produce the same post-crash image (determinism is
// what makes harness failures reproducible).
func TestDeterministicCrash(t *testing.T) {
	run := func() string {
		fs := New()
		fs.FailAt(5)
		f, _ := fs.Create("a")
		f.Write([]byte("hello world"))
		f.Sync()
		fs.SyncDir()
		f.Write([]byte(" more unsynced bytes")) // op 4
		f.Sync()                                // op 5: crash, partial sync
		disk := fs.Disk()
		return readFile(t, disk, "a")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same failAt, different images: %q vs %q", a, b)
	}
	if len(a) < len("hello world") {
		t.Fatalf("synced prefix lost: %q", a)
	}
}
