// Package binenc provides the small varint-based binary encoding shared by
// the snapshot format (internal/dataset) and the WAL record codec
// (internal/wal). The decoder is written for hostile input: every length
// field is validated against the bytes actually present before any
// allocation, so arbitrary or bit-flipped payloads fail with an error —
// never a panic or an attacker-sized allocation.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is the sentinel wrapped by every decoder error.
var ErrCorrupt = errors.New("binenc: corrupt input")

// Writer accumulates an encoded payload in memory. The zero value is ready
// to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends v in unsigned varint form.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Uint appends a non-negative int as a uvarint.
func (w *Writer) Uint(v int) { w.Uvarint(uint64(v)) }

// String appends s as a uvarint length followed by its bytes.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Reader decodes a payload produced by Writer. Methods record the first
// error and become no-ops afterwards; callers check Err once at the end
// (or after any value that gates further control flow).
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// Uvarint decodes one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Uint decodes a uvarint that must fit in a non-negative int.
func (r *Reader) Uint() int {
	v := r.Uvarint()
	if r.err == nil && v > uint64(int(^uint(0)>>1)) {
		r.fail("uvarint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Count decodes a uvarint element count where each element occupies at
// least minBytes of the remaining payload, rejecting counts the input
// cannot possibly back — the cap that keeps hostile length fields from
// driving allocations.
func (r *Reader) Count(minBytes int) int {
	n := r.Uint()
	if r.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > r.Remaining()/minBytes {
		r.fail("count %d exceeds remaining %d bytes", n, r.Remaining())
		return 0
	}
	return n
}

// String decodes a uvarint-length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint()
	if r.err != nil {
		return ""
	}
	if n > r.Remaining() {
		r.fail("string length %d exceeds remaining %d bytes", n, r.Remaining())
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("unexpected end of input")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}
