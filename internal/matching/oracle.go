package matching

// BruteForceScore computes the maximum-weight bipartite matching score by
// exhaustive search over all matchings. It is exponential and exists only as
// a test oracle for small inputs (min side ≤ ~8).
func BruteForceScore(w [][]float64) float64 {
	n := len(w)
	if n == 0 {
		return 0
	}
	m := len(w[0])
	if m == 0 {
		return 0
	}
	if n > m {
		// Transpose so recursion is over the smaller side.
		t := make([][]float64, m)
		for j := 0; j < m; j++ {
			t[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				t[j][i] = w[i][j]
			}
		}
		w = t
		n, m = m, n
	}
	usedCols := make([]bool, m)
	var rec func(row int) float64
	rec = func(row int) float64 {
		if row == n {
			return 0
		}
		// Option 1: leave this row unmatched.
		best := rec(row + 1)
		for j := 0; j < m; j++ {
			if usedCols[j] {
				continue
			}
			usedCols[j] = true
			s := w[row][j] + rec(row+1)
			usedCols[j] = false
			if s > best {
				best = s
			}
		}
		return best
	}
	return rec(0)
}
