package matching

import "math"

// Weights supplies the pairwise similarity matrix of a matching computation
// without materializing it: At(i, j) is the weight of the edge between left
// element i and right element j. Implementations backed by a struct pointer
// let callers run verification with zero per-pair allocations (a func value
// closing over the pair would allocate).
type Weights interface {
	At(i, j int) float64
}

// simFunc adapts a plain function to Weights for the package's convenience
// entry points.
type simFunc func(i, j int) float64

func (f simFunc) At(i, j int) float64 { return f(i, j) }

// Scratch owns every reusable buffer of matching computations: the flat
// weight matrix, the Hungarian algorithm's potentials and augmenting-path
// state, and the reduction's key grouping tables. A worker that keeps one
// Scratch across verifications performs no per-pair heap allocations in
// steady state (buffers grow monotonically to the largest pair seen). A
// Scratch is not safe for concurrent use; create one per worker. The zero
// value is ready to use.
type Scratch struct {
	// Flat weight matrix, row-major with stride cols (nS).
	w []float64
	// Hungarian state, 1-based like the textbook formulation.
	u, v, minv []float64
	p, way     []int32
	used       []bool
	// rowTo[i] is the column matched to row i after solve (solver-side
	// orientation, rows = min side).
	rowTo []int32
	// Reduction scratch: an open-addressing key→stack table over the
	// right side plus the surviving index lists.
	tblKey, tblHead     []int32
	chain               []int32
	usedS               []bool
	leftRest, rightRest []int32
}

// Score computes the maximum-weight bipartite matching score between nR and
// nS elements, reusing the scratch's buffers.
func (sc *Scratch) Score(nR, nS int, wts Weights) float64 {
	if nR == 0 || nS == 0 {
		return 0
	}
	sc.fill(nR, nS, wts)
	return sc.solve(nR, nS)
}

// fill materializes the weight matrix into the scratch, row-major.
func (sc *Scratch) fill(nR, nS int, wts Weights) {
	sc.w = growFloats(sc.w, nR*nS)
	idx := 0
	for i := 0; i < nR; i++ {
		for j := 0; j < nS; j++ {
			sc.w[idx] = wts.At(i, j)
			idx++
		}
	}
}

// ScoreReduced computes the maximum matching score with the §5.3
// identical-element reduction, comparing interned integer keys instead of
// strings: keyR[i] and keyS[j] are exact content keys (dataset.Element.Key);
// two elements are identical iff their keys are equal and non-negative. A
// negative key marks an element that can never be reduced. Identical pairs
// are matched outright (score 1 each) and the O(n³) matching runs only on
// the remainder. wts is only consulted for unreduced elements.
//
// The caller remains responsible for only using this when 1-φ satisfies the
// triangle inequality and α = 0 (paper §6.5).
func (sc *Scratch) ScoreReduced(keyR, keyS []int32, wts Weights) float64 {
	nR, nS := len(keyR), len(keyS)

	// Group right elements by key: per key a LIFO stack of indices (head =
	// largest j), via an open-addressing table plus an index chain. The
	// stack order reproduces the historical pairing exactly (each left
	// element consumes the largest unconsumed identical right index);
	// identical keys mean identical elements, so any pairing yields the
	// same score, but keeping the order bit-stable keeps refactors
	// trivially diffable.
	tbl := tableSize(nS)
	sc.tblKey = growInt32(sc.tblKey, tbl)
	sc.tblHead = growInt32(sc.tblHead, tbl)
	for i := 0; i < tbl; i++ {
		sc.tblKey[i] = -1
	}
	sc.chain = growInt32(sc.chain, nS)
	sc.usedS = growBools(sc.usedS, nS)
	mask := int32(tbl - 1)
	for j := 0; j < nS; j++ {
		sc.usedS[j] = false
		k := keyS[j]
		if k < 0 {
			continue
		}
		slot := sc.findSlot(k, mask)
		if sc.tblKey[slot] < 0 {
			sc.tblKey[slot] = k
			sc.chain[j] = -1
		} else {
			sc.chain[j] = sc.tblHead[slot]
		}
		sc.tblHead[slot] = int32(j)
	}

	identical := 0
	sc.leftRest = sc.leftRest[:0]
	for i := 0; i < nR; i++ {
		k := keyR[i]
		if k >= 0 {
			slot := sc.findSlot(k, mask)
			if sc.tblKey[slot] == k && sc.tblHead[slot] >= 0 {
				j := sc.tblHead[slot]
				sc.tblHead[slot] = sc.chain[j]
				sc.usedS[j] = true
				identical++
				continue
			}
		}
		sc.leftRest = append(sc.leftRest, int32(i))
	}
	sc.rightRest = sc.rightRest[:0]
	for j := 0; j < nS; j++ {
		if !sc.usedS[j] {
			sc.rightRest = append(sc.rightRest, int32(j))
		}
	}

	score := float64(identical)
	lr, rr := len(sc.leftRest), len(sc.rightRest)
	if lr == 0 || rr == 0 {
		return score
	}
	sc.w = growFloats(sc.w, lr*rr)
	idx := 0
	for _, i := range sc.leftRest {
		for _, j := range sc.rightRest {
			sc.w[idx] = wts.At(int(i), int(j))
			idx++
		}
	}
	return score + sc.solve(lr, rr)
}

// findSlot probes the key table for k, returning its slot or the first
// empty one. The table is sized ≥ 2× occupancy, so probing terminates.
func (sc *Scratch) findSlot(k, mask int32) int32 {
	slot := int32(uint32(k)*0x9E3779B1) & mask
	for sc.tblKey[slot] >= 0 && sc.tblKey[slot] != k {
		slot = (slot + 1) & mask
	}
	return slot
}

// tableSize returns the power-of-two open-addressing table size for n keys.
func tableSize(n int) int {
	t := 8
	for t < 2*n {
		t <<= 1
	}
	return t
}

// solve runs the Jonker-Volgenant style Hungarian algorithm over the
// scratch's flat nR×nS weight matrix (row-major, stride nS), returning the
// maximum matching score. When nR > nS the matrix is walked transposed so
// the smaller side is always fully assigned. It also leaves the solver-side
// assignment in sc.rowTo for Assign. The arithmetic — including iteration
// order, the cost transform cost = maxW - w, and the potential updates — is
// kept identical to the historical [][]float64 implementation so scores are
// bit-stable across the refactor.
func (sc *Scratch) solve(nR, nS int) float64 {
	stride := nS
	rows, cols := nR, nS
	transposed := false
	if rows > cols {
		rows, cols = cols, rows
		transposed = true
	}

	maxW := 0.0
	for _, x := range sc.w[:nR*nS] {
		if x > maxW {
			maxW = x
		}
		if x < 0 {
			panic("matching: negative weight")
		}
	}

	const inf = math.MaxFloat64
	sc.u = growFloats(sc.u, rows+1)
	sc.v = growFloats(sc.v, cols+1)
	sc.minv = growFloats(sc.minv, cols+1)
	sc.p = growInt32(sc.p, cols+1)
	sc.way = growInt32(sc.way, cols+1)
	sc.used = growBools(sc.used, cols+1)
	for i := 0; i <= rows; i++ {
		sc.u[i] = 0
	}
	for j := 0; j <= cols; j++ {
		sc.v[j] = 0
		sc.p[j] = 0
		sc.way[j] = 0
	}

	at := func(i, j int) float64 {
		if transposed {
			return sc.w[j*stride+i]
		}
		return sc.w[i*stride+j]
	}

	for i := 1; i <= rows; i++ {
		sc.p[0] = int32(i)
		j0 := 0
		for j := 0; j <= cols; j++ {
			sc.minv[j] = inf
			sc.used[j] = false
		}
		for {
			sc.used[j0] = true
			i0 := int(sc.p[j0])
			delta := inf
			j1 := -1
			for j := 1; j <= cols; j++ {
				if sc.used[j] {
					continue
				}
				cur := maxW - at(i0-1, j-1) - sc.u[i0] - sc.v[j]
				if cur < sc.minv[j] {
					sc.minv[j] = cur
					sc.way[j] = int32(j0)
				}
				if sc.minv[j] < delta {
					delta = sc.minv[j]
					j1 = j
				}
			}
			for j := 0; j <= cols; j++ {
				if sc.used[j] {
					sc.u[sc.p[j]] += delta
					sc.v[j] -= delta
				} else {
					sc.minv[j] -= delta
				}
			}
			j0 = j1
			if sc.p[j0] == 0 {
				break
			}
		}
		for {
			j1 := sc.way[j0]
			sc.p[j0] = sc.p[j1]
			j0 = int(j1)
			if j0 == 0 {
				break
			}
		}
	}

	sc.rowTo = growInt32(sc.rowTo, rows)
	for i := 0; i < rows; i++ {
		sc.rowTo[i] = 0
	}
	for j := 1; j <= cols; j++ {
		if sc.p[j] != 0 {
			sc.rowTo[sc.p[j]-1] = int32(j - 1)
		}
	}

	score := 0.0
	for i := 0; i < rows; i++ {
		score += at(i, int(sc.rowTo[i]))
	}
	return score
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
