package matching

import (
	"math/rand"
	"testing"

	"silkmoth/internal/raceflag"
)

// TestScratchReuseMatchesFresh drives one Scratch through many random
// instances of varying shape and checks every score against a fresh
// Scratch and the package-level entry points: buffer reuse must never leak
// state between computations.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var reused Scratch
	for trial := 0; trial < 200; trial++ {
		nR, nS := 1+rng.Intn(7), 1+rng.Intn(7)
		w := make([][]float64, nR)
		for i := range w {
			w[i] = make([]float64, nS)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(10)) / 10
			}
		}
		sim := func(i, j int) float64 { return w[i][j] }
		got := reused.Score(nR, nS, simFunc(sim))
		var fresh Scratch
		if want := fresh.Score(nR, nS, simFunc(sim)); got != want {
			t.Fatalf("trial %d (%dx%d): reused scratch %v, fresh %v", trial, nR, nS, got, want)
		}
		if want := MaxWeightScore(w); got != want {
			t.Fatalf("trial %d (%dx%d): scratch %v, MaxWeightScore %v", trial, nR, nS, got, want)
		}
	}
}

// TestScoreReducedMatchesStringForm checks the integer-key reduction against
// the string-keyed wrapper on random instances with heavy key collisions,
// including interleaved reuse of one Scratch.
func TestScoreReducedMatchesStringForm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	keyspace := []string{"", "a", "b", "c", "d"}
	var reused Scratch
	for trial := 0; trial < 200; trial++ {
		nR, nS := 1+rng.Intn(6), 1+rng.Intn(6)
		keyR := make([]string, nR)
		keyS := make([]string, nS)
		for i := range keyR {
			keyR[i] = keyspace[rng.Intn(len(keyspace))]
		}
		for j := range keyS {
			keyS[j] = keyspace[rng.Intn(len(keyspace))]
		}
		w := make([][]float64, nR)
		for i := range w {
			w[i] = make([]float64, nS)
			for j := range w[i] {
				if keyR[i] != "" && keyR[i] == keyS[j] {
					w[i][j] = 1 // identical elements have similarity 1
				} else {
					w[i][j] = float64(rng.Intn(10)) / 10
				}
			}
		}
		sim := func(i, j int) float64 { return w[i][j] }
		want := ScoreWithReduction(keyR, keyS, sim)

		// Integer keys via an arbitrary (different) interning order.
		ids := map[string]int32{"a": 40, "b": 7, "c": 19, "d": 3}
		conv := func(keys []string) []int32 {
			out := make([]int32, len(keys))
			for i, k := range keys {
				if k == "" {
					out[i] = -1
				} else {
					out[i] = ids[k]
				}
			}
			return out
		}
		got := reused.ScoreReduced(conv(keyR), conv(keyS), simFunc(sim))
		if got != want {
			t.Fatalf("trial %d: ScoreReduced %v, ScoreWithReduction %v (keyR=%v keyS=%v)",
				trial, got, want, keyR, keyS)
		}
	}
}

// TestScratchScoreAllocs pins the zero-allocation property of a reused
// scratch.
func TestScratchScoreAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	var sc Scratch
	wts := simFunc(func(i, j int) float64 { return float64((i*7+j*3)%10) / 10 })
	keyR := []int32{1, -1, 2, 3}
	keyS := []int32{2, 1, -1, 5, 1}
	sc.Score(6, 8, wts)
	sc.ScoreReduced(keyR, keyS, wts)
	if got := testing.AllocsPerRun(100, func() { sc.Score(6, 8, wts) }); got > 0 {
		t.Errorf("Scratch.Score allocates %.1f objects steady-state, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() { sc.ScoreReduced(keyR, keyS, wts) }); got > 0 {
		t.Errorf("Scratch.ScoreReduced allocates %.1f objects steady-state, want 0", got)
	}
}
