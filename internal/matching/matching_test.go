package matching

import (
	"math"
	"math/rand"
	"testing"
)

const eps = 1e-9

func TestAssignKnownSquare(t *testing.T) {
	w := [][]float64{
		{0.9, 0.1},
		{0.2, 0.8},
	}
	got := MaxWeightScore(w)
	if math.Abs(got-1.7) > eps {
		t.Errorf("score = %v, want 1.7", got)
	}
}

func TestAssignCrossing(t *testing.T) {
	// The greedy diagonal (0.9 + 0) loses to the crossing (0.8 + 0.7).
	w := [][]float64{
		{0.9, 0.8},
		{0.7, 0.0},
	}
	got := MaxWeightScore(w)
	if math.Abs(got-1.5) > eps {
		t.Errorf("score = %v, want 1.5", got)
	}
}

func TestAssignRectangularWide(t *testing.T) {
	w := [][]float64{
		{0.1, 0.9, 0.3, 0.2},
	}
	if got := MaxWeightScore(w); math.Abs(got-0.9) > eps {
		t.Errorf("score = %v, want 0.9", got)
	}
}

func TestAssignRectangularTall(t *testing.T) {
	w := [][]float64{
		{0.5},
		{0.9},
		{0.3},
	}
	if got := MaxWeightScore(w); math.Abs(got-0.9) > eps {
		t.Errorf("score = %v, want 0.9", got)
	}
}

func TestAssignEmpty(t *testing.T) {
	if MaxWeightScore(nil) != 0 {
		t.Error("empty matrix should score 0")
	}
	if MaxWeightScore([][]float64{}) != 0 {
		t.Error("zero-row matrix should score 0")
	}
	if MaxWeightScore([][]float64{{}}) != 0 {
		t.Error("zero-column matrix should score 0")
	}
}

func TestAssignZeroMatrix(t *testing.T) {
	w := [][]float64{{0, 0}, {0, 0}}
	if MaxWeightScore(w) != 0 {
		t.Error("all-zero matrix should score 0")
	}
}

func TestAssignPaperExample2(t *testing.T) {
	// Paper Example 2: |R ∩̃ S4| = Jac(r1,s41)+Jac(r2,s42)+Jac(r3,s43)
	//                = 0.8 + 1 + 3/7 = 2.2286...
	w := [][]float64{
		// s41        s42        s43
		{0.8, computeJac(5, 5, 1), computeJac(5, 5, 2)},       // r1
		{computeJac(5, 5, 0), 1.0, computeJac(5, 5, 2)},       // r2
		{computeJac(5, 4, 1), computeJac(5, 5, 2), 3.0 / 7.0}, // r3
	}
	got := MaxWeightScore(w)
	want := 0.8 + 1.0 + 3.0/7.0
	if math.Abs(got-want) > eps {
		t.Errorf("Example 2 matching score = %v, want %v", got, want)
	}
}

// computeJac returns the Jaccard similarity of two sets with the given sizes
// and intersection size.
func computeJac(a, b, inter int) float64 {
	return float64(inter) / float64(a+b-inter)
}

func TestAssignReturnsValidAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(5) + 1
		m := rng.Intn(5) + 1
		w := randMatrix(rng, n, m)
		assign, score := Assign(w)
		if len(assign) != n {
			t.Fatalf("assignment length %d, want %d", len(assign), n)
		}
		seen := make(map[int]bool)
		sum := 0.0
		for i, j := range assign {
			if j == -1 {
				continue
			}
			if j < 0 || j >= m {
				t.Fatalf("assignment out of range: %d", j)
			}
			if seen[j] {
				t.Fatalf("column %d assigned twice", j)
			}
			seen[j] = true
			sum += w[i][j]
		}
		if math.Abs(sum-score) > eps {
			t.Fatalf("assignment sum %v != reported score %v", sum, score)
		}
	}
}

func randMatrix(rng *rand.Rand, n, m int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, m)
		for j := range w[i] {
			// Discretized weights avoid fragile float comparisons.
			w[i][j] = float64(rng.Intn(11)) / 10
		}
	}
	return w
}

// Property: Hungarian matches the exhaustive oracle on random rectangular
// matrices.
func TestAssignMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 1500; trial++ {
		n := rng.Intn(6) + 1
		m := rng.Intn(6) + 1
		w := randMatrix(rng, n, m)
		got := MaxWeightScore(w)
		want := BruteForceScore(w)
		if math.Abs(got-want) > eps {
			t.Fatalf("trial %d: Hungarian %v != oracle %v for %v", trial, got, want, w)
		}
	}
}

func TestAssignLargerRandomAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(3) + 6 // 6..8
		m := rng.Intn(3) + 6
		w := randMatrix(rng, n, m)
		got := MaxWeightScore(w)
		want := BruteForceScore(w)
		if math.Abs(got-want) > eps {
			t.Fatalf("trial %d: Hungarian %v != oracle %v", trial, got, want)
		}
	}
}

func TestScoreMatchesMaxWeightScore(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(5) + 1
		m := rng.Intn(5) + 1
		w := randMatrix(rng, n, m)
		got := Score(n, m, func(i, j int) float64 { return w[i][j] })
		want := MaxWeightScore(w)
		if math.Abs(got-want) > eps {
			t.Fatalf("Score %v != MaxWeightScore %v", got, want)
		}
	}
}

func TestScoreEmptySides(t *testing.T) {
	if Score(0, 3, nil) != 0 || Score(3, 0, nil) != 0 {
		t.Error("empty side should score 0")
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative weight")
		}
	}()
	MaxWeightScore([][]float64{{-0.1}})
}
