package matching

// ScoreWithReduction computes the maximum-weight bipartite matching score
// between nR left elements and nS right elements, first removing pairs of
// identical elements per the triangle-inequality reduction of paper §5.3:
// when the dual distance 1-φ is a metric, every pair of identical elements
// appears in some maximum matching, so identical pairs can be matched
// outright (score 1 each) and the O(n³) matching run only on the remainder.
//
// keyR[i] and keyS[j] are exact content keys: two elements are identical iff
// their keys are equal and non-empty. An empty key marks an element that can
// never be reduced (e.g. an element with no tokens, whose self-similarity is
// 0 by convention). sim(i, j) returns φ_α between left element i and right
// element j and is only invoked for unreduced elements.
//
// This is the string-keyed convenience form: it interns the keys to dense
// integers and delegates to Scratch.ScoreReduced, which the engine's hot
// path calls directly with build-time interned keys (dataset.Element.Key).
//
// The caller is responsible for only using this when 1-φ satisfies the
// triangle inequality and α = 0 (paper §6.5): Jaccard and Eds qualify,
// NEds and any α > 0 do not.
func ScoreWithReduction(keyR, keyS []string, sim func(i, j int) float64) float64 {
	ids := make(map[string]int32, len(keyR)+len(keyS))
	conv := func(keys []string) []int32 {
		out := make([]int32, len(keys))
		for i, k := range keys {
			if k == "" {
				out[i] = -1
				continue
			}
			id, ok := ids[k]
			if !ok {
				id = int32(len(ids))
				ids[k] = id
			}
			out[i] = id
		}
		return out
	}
	kr, ks := conv(keyR), conv(keyS)
	var sc Scratch
	return sc.ScoreReduced(kr, ks, simFunc(sim))
}

// Score computes the maximum-weight bipartite matching score between nR and
// nS elements without the reduction. This is the allocation-per-call form of
// Scratch.Score.
func Score(nR, nS int, sim func(i, j int) float64) float64 {
	var sc Scratch
	return sc.Score(nR, nS, simFunc(sim))
}
