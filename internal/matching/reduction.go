package matching

// ScoreWithReduction computes the maximum-weight bipartite matching score
// between nR left elements and nS right elements, first removing pairs of
// identical elements per the triangle-inequality reduction of paper §5.3:
// when the dual distance 1-φ is a metric, every pair of identical elements
// appears in some maximum matching, so identical pairs can be matched
// outright (score 1 each) and the O(n³) matching run only on the remainder.
//
// keyR[i] and keyS[j] are exact content keys: two elements are identical iff
// their keys are equal and non-empty. An empty key marks an element that can
// never be reduced (e.g. an element with no tokens, whose self-similarity is
// 0 by convention). sim(i, j) returns φ_α between left element i and right
// element j and is only invoked for unreduced elements.
//
// The caller is responsible for only using this when 1-φ satisfies the
// triangle inequality and α = 0 (paper §6.5): Jaccard and Eds qualify,
// NEds and any α > 0 do not.
func ScoreWithReduction(keyR, keyS []string, sim func(i, j int) float64) float64 {
	// Index right elements by key.
	byKey := make(map[string][]int, len(keyS))
	for j, k := range keyS {
		if k == "" {
			continue
		}
		byKey[k] = append(byKey[k], j)
	}

	usedS := make([]bool, len(keyS))
	var leftRest []int
	identical := 0
	for i, k := range keyR {
		if k != "" {
			if js := byKey[k]; len(js) > 0 {
				j := js[len(js)-1]
				byKey[k] = js[:len(js)-1]
				usedS[j] = true
				identical++
				continue
			}
		}
		leftRest = append(leftRest, i)
	}
	var rightRest []int
	for j := range keyS {
		if !usedS[j] {
			rightRest = append(rightRest, j)
		}
	}

	score := float64(identical)
	if len(leftRest) == 0 || len(rightRest) == 0 {
		return score
	}
	w := make([][]float64, len(leftRest))
	for a, i := range leftRest {
		row := make([]float64, len(rightRest))
		for b, j := range rightRest {
			row[b] = sim(i, j)
		}
		w[a] = row
	}
	return score + MaxWeightScore(w)
}

// Score computes the maximum-weight bipartite matching score between nR and
// nS elements without the reduction, materializing the full weight matrix.
func Score(nR, nS int, sim func(i, j int) float64) float64 {
	if nR == 0 || nS == 0 {
		return 0
	}
	w := make([][]float64, nR)
	for i := 0; i < nR; i++ {
		row := make([]float64, nS)
		for j := 0; j < nS; j++ {
			row[j] = sim(i, j)
		}
		w[i] = row
	}
	return MaxWeightScore(w)
}
