// Package matching implements maximum-weight bipartite matching, the |R ∩̃ S|
// computation at the heart of SilkMoth's relatedness metrics (paper §2.1),
// plus the triangle-inequality reduction of §5.3 and an exhaustive oracle
// used by tests. The solver itself lives in Scratch (scratch.go); the
// functions here are the allocation-per-call convenience forms.
package matching

// MaxWeightScore returns the score of the maximum-weight bipartite matching
// of the weight matrix w, where w[i][j] ≥ 0 is the weight of the edge between
// left vertex i and right vertex j. Each vertex is matched at most once.
//
// Because weights are non-negative, some maximum-weight matching saturates
// the smaller side, so the problem reduces to the rectangular assignment
// problem, solved with the Jonker-Volgenant style Hungarian algorithm in
// O(n²·m) time for n = min rows, m = max (Scratch.solve).
func MaxWeightScore(w [][]float64) float64 {
	_, score := Assign(w)
	return score
}

// Assign solves the same problem as MaxWeightScore and additionally returns
// the assignment: for each left vertex i (row of w), assign[i] is the index
// of the matched right vertex, or -1 when w has more rows than columns and
// row i went unmatched. Edges of weight 0 in the returned assignment carry
// no score and may be treated as unmatched.
func Assign(w [][]float64) ([]int, float64) {
	n := len(w)
	if n == 0 {
		return nil, 0
	}
	m := len(w[0])
	if m == 0 {
		return make([]int, n), 0
	}

	var sc Scratch
	sc.w = growFloats(sc.w, n*m)
	idx := 0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			sc.w[idx] = w[i][j]
			idx++
		}
	}
	score := sc.solve(n, m)

	assign := make([]int, n)
	if n <= m {
		for i := 0; i < n; i++ {
			assign[i] = int(sc.rowTo[i])
		}
	} else {
		// Transposed solve: rowTo indexes original columns; rows beyond
		// the column count stay unmatched.
		for i := range assign {
			assign[i] = -1
		}
		for i := 0; i < m; i++ {
			assign[sc.rowTo[i]] = i
		}
	}
	return assign, score
}
