// Package matching implements maximum-weight bipartite matching, the |R ∩̃ S|
// computation at the heart of SilkMoth's relatedness metrics (paper §2.1),
// plus the triangle-inequality reduction of §5.3 and an exhaustive oracle
// used by tests.
package matching

import "math"

// MaxWeightScore returns the score of the maximum-weight bipartite matching
// of the weight matrix w, where w[i][j] ≥ 0 is the weight of the edge between
// left vertex i and right vertex j. Each vertex is matched at most once.
//
// Because weights are non-negative, some maximum-weight matching saturates
// the smaller side, so the problem reduces to the rectangular assignment
// problem, solved here with the Jonker-Volgenant style Hungarian algorithm in
// O(n²·m) time for n = min rows, m = max.
func MaxWeightScore(w [][]float64) float64 {
	assign, score := Assign(w)
	_ = assign
	return score
}

// Assign solves the same problem as MaxWeightScore and additionally returns
// the assignment: for each left vertex i (row of w), assign[i] is the index
// of the matched right vertex, or -1 when w has more rows than columns and
// row i went unmatched. Edges of weight 0 in the returned assignment carry
// no score and may be treated as unmatched.
func Assign(w [][]float64) ([]int, float64) {
	n := len(w)
	if n == 0 {
		return nil, 0
	}
	m := len(w[0])
	if m == 0 {
		return make([]int, n), 0
	}

	transposed := false
	rows, cols := n, m
	get := func(i, j int) float64 { return w[i][j] }
	if rows > cols {
		transposed = true
		rows, cols = cols, rows
		get = func(i, j int) float64 { return w[j][i] }
	}

	// Hungarian algorithm with potentials, minimizing cost = maxW - w.
	// All rows (the smaller side) end up assigned; converting back, zero
	// padding is implicit because cost is bounded by maxW.
	maxW := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if w[i][j] > maxW {
				maxW = w[i][j]
			}
			if w[i][j] < 0 {
				panic("matching: negative weight")
			}
		}
	}

	cost := func(i, j int) float64 { return maxW - get(i, j) }

	const inf = math.MaxFloat64
	u := make([]float64, rows+1)
	v := make([]float64, cols+1)
	p := make([]int, cols+1) // p[j] = row assigned to column j (1-based), 0 = free
	way := make([]int, cols+1)

	for i := 1; i <= rows; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, cols+1)
		used := make([]bool, cols+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= cols; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= cols; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	rowTo := make([]int, rows)
	for j := 1; j <= cols; j++ {
		if p[j] != 0 {
			rowTo[p[j]-1] = j - 1
		}
	}

	assign := make([]int, n)
	score := 0.0
	if !transposed {
		for i := 0; i < rows; i++ {
			assign[i] = rowTo[i]
			score += get(i, rowTo[i])
		}
	} else {
		for i := range assign {
			assign[i] = -1
		}
		for i := 0; i < rows; i++ { // i indexes original columns here
			assign[rowTo[i]] = i
			score += get(i, rowTo[i])
		}
	}
	return assign, score
}
