package matching

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"silkmoth/internal/sim"
	"silkmoth/internal/tokens"
)

// randTokenSets builds n random sorted token-id sets over a small alphabet,
// so duplicates across sets are common and the reduction actually triggers.
func randTokenSets(rng *rand.Rand, n int) [][]tokens.ID {
	sets := make([][]tokens.ID, n)
	for i := range sets {
		k := rng.Intn(4) + 1
		ids := make([]tokens.ID, k)
		for j := range ids {
			ids[j] = tokens.ID(rng.Intn(6))
		}
		sets[i] = tokens.SortUnique(ids)
	}
	return sets
}

func keyOf(ids []tokens.ID) string {
	if len(ids) == 0 {
		return ""
	}
	b := make([]byte, 0, len(ids)*4)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// Property: reduction-based score equals plain matching score under Jaccard
// (whose dual distance is a metric), per paper §5.3.
func TestReductionMatchesPlainJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 2000; trial++ {
		r := randTokenSets(rng, rng.Intn(5)+1)
		s := randTokenSets(rng, rng.Intn(5)+1)
		simFn := func(i, j int) float64 { return sim.JaccardSorted(r[i], s[j]) }
		keyR := make([]string, len(r))
		for i := range r {
			keyR[i] = keyOf(r[i])
		}
		keyS := make([]string, len(s))
		for j := range s {
			keyS[j] = keyOf(s[j])
		}
		plain := Score(len(r), len(s), simFn)
		reduced := ScoreWithReduction(keyR, keyS, simFn)
		if math.Abs(plain-reduced) > eps {
			t.Fatalf("trial %d: reduced %v != plain %v\nR=%v\nS=%v", trial, reduced, plain, r, s)
		}
	}
}

// Property: the reduction is also exact under Eds on strings.
func TestReductionMatchesPlainEds(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	randStr := func() string {
		letters := "abc"
		n := rng.Intn(4) + 1
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	for trial := 0; trial < 2000; trial++ {
		nR, nS := rng.Intn(4)+1, rng.Intn(4)+1
		r := make([]string, nR)
		s := make([]string, nS)
		for i := range r {
			r[i] = randStr()
		}
		for j := range s {
			s[j] = randStr()
		}
		simFn := func(i, j int) float64 { return sim.Eds(r[i], s[j]) }
		plain := Score(nR, nS, simFn)
		reduced := ScoreWithReduction(r, s, simFn)
		if math.Abs(plain-reduced) > eps {
			t.Fatalf("trial %d: reduced %v != plain %v\nR=%v S=%v", trial, reduced, plain, r, s)
		}
	}
}

func TestReductionAllIdentical(t *testing.T) {
	keys := []string{"a", "b", "c"}
	called := false
	got := ScoreWithReduction(keys, keys, func(i, j int) float64 {
		called = true
		return 0
	})
	if got != 3 {
		t.Errorf("score = %v, want 3", got)
	}
	if called {
		t.Error("sim should not be called when everything reduces")
	}
}

func TestReductionEmptyKeysNeverPair(t *testing.T) {
	// Elements with empty keys (empty elements) must not be paired as
	// identical even though their keys are equal.
	keyR := []string{""}
	keyS := []string{""}
	got := ScoreWithReduction(keyR, keyS, func(i, j int) float64 { return 0 })
	if got != 0 {
		t.Errorf("empty elements paired as identical: score %v", got)
	}
}

func TestReductionDuplicateMultiplicity(t *testing.T) {
	// R has two copies of "x", S has one: only one pair may reduce.
	keyR := []string{"x", "x"}
	keyS := []string{"x", "y"}
	simCalls := 0
	got := ScoreWithReduction(keyR, keyS, func(i, j int) float64 {
		simCalls++
		return 0.25
	})
	// One identical pair (1.0) plus best match of remaining 1x1 (0.25).
	if math.Abs(got-1.25) > eps {
		t.Errorf("score = %v, want 1.25", got)
	}
	if simCalls != 1 {
		t.Errorf("sim called %d times, want 1", simCalls)
	}
}

func TestReductionDeterministicAcrossOrders(t *testing.T) {
	// Shuffling input order must not change the score.
	rng := rand.New(rand.NewSource(31))
	r := randTokenSets(rng, 6)
	s := randTokenSets(rng, 6)
	score := func(r, s [][]tokens.ID) float64 {
		keyR := make([]string, len(r))
		for i := range r {
			keyR[i] = keyOf(r[i])
		}
		keyS := make([]string, len(s))
		for j := range s {
			keyS[j] = keyOf(s[j])
		}
		return ScoreWithReduction(keyR, keyS, func(i, j int) float64 {
			return sim.JaccardSorted(r[i], s[j])
		})
	}
	base := score(r, s)
	for trial := 0; trial < 20; trial++ {
		r2 := append([][]tokens.ID(nil), r...)
		s2 := append([][]tokens.ID(nil), s...)
		rng.Shuffle(len(r2), func(i, j int) { r2[i], r2[j] = r2[j], r2[i] })
		rng.Shuffle(len(s2), func(i, j int) { s2[i], s2[j] = s2[j], s2[i] })
		if got := score(r2, s2); math.Abs(got-base) > eps {
			t.Fatalf("order-dependent score: %v vs %v", got, base)
		}
	}
}

func TestBruteForceScoreSmall(t *testing.T) {
	w := [][]float64{
		{0.9, 0.8},
		{0.7, 0.0},
	}
	if got := BruteForceScore(w); math.Abs(got-1.5) > eps {
		t.Errorf("oracle = %v, want 1.5", got)
	}
	if BruteForceScore(nil) != 0 {
		t.Error("oracle of empty should be 0")
	}
}

// Sanity: oracle handles the tall case by transposition.
func TestBruteForceTall(t *testing.T) {
	w := [][]float64{{0.2}, {0.9}, {0.5}}
	if got := BruteForceScore(w); math.Abs(got-0.9) > eps {
		t.Errorf("oracle tall = %v, want 0.9", got)
	}
}

// Fuzz the key encoding helper used across tests: distinct id slices must
// produce distinct keys.
func TestKeyOfInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seen := make(map[string][]tokens.ID)
	for i := 0; i < 5000; i++ {
		s := randTokenSets(rng, 1)[0]
		k := keyOf(s)
		if prev, ok := seen[k]; ok {
			if fmt.Sprint(prev) != fmt.Sprint(s) {
				t.Fatalf("key collision: %v vs %v", prev, s)
			}
		}
		seen[k] = s
	}
	// Also ensure sortedness of inputs (precondition).
	for _, s := range seen {
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
			t.Fatal("test inputs must be sorted")
		}
	}
}
