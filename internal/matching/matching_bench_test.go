package matching

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkHungarian measures the O(n²m) assignment solver across the set
// sizes of the paper's workloads (titles ≈ 9 elements, columns up to ~200).
func BenchmarkHungarian(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		rng := rand.New(rand.NewSource(int64(n)))
		w := randMatrix(rng, n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MaxWeightScore(w)
			}
		})
	}
}

// Ablation for the §5.3 reduction: with half the elements identical, the
// reduction shrinks the matrix the cubic matcher sees by half, which is the
// 30-50% win Figure 7 reports.
func BenchmarkReductionAblation(b *testing.B) {
	for _, n := range []int{32, 128} {
		rng := rand.New(rand.NewSource(int64(n)))
		keyR := make([]string, n)
		keyS := make([]string, n)
		for i := 0; i < n; i++ {
			if i < n/2 {
				k := fmt.Sprintf("shared%d", i)
				keyR[i], keyS[i] = k, k
			} else {
				keyR[i] = fmt.Sprintf("r%d", i)
				keyS[i] = fmt.Sprintf("s%d", i)
			}
		}
		w := randMatrix(rng, n, n)
		sim := func(i, j int) float64 { return w[i][j] }
		b.Run(fmt.Sprintf("plain/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Score(n, n, sim)
			}
		})
		b.Run(fmt.Sprintf("reduced/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ScoreWithReduction(keyR, keyS, sim)
			}
		})
	}
}
