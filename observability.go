package silkmoth

import (
	"time"

	"silkmoth/internal/core"
	"silkmoth/internal/obs"
)

// LatencyHistogram is a point-in-time latency distribution with fixed
// log-spaced buckets (powers of two from 1µs to ~67s). Engines maintain
// one per pipeline stage and, when sharded, one per shard; serving layers
// render them as Prometheus histograms.
type LatencyHistogram struct {
	// Bounds are the finite bucket upper bounds in seconds, ascending.
	Bounds []float64
	// Counts are per-bucket observation counts: Counts[i] observations
	// were ≤ Bounds[i] (and above the previous bound); the final extra
	// element counts observations above every bound. Counts are
	// non-cumulative; len(Counts) = len(Bounds)+1.
	Counts []int64
	// Count is the total number of observations, Sum their summed
	// duration.
	Count int64
	Sum   time.Duration
}

// fromSnapshot converts an internal histogram snapshot to the public form.
func fromSnapshot(s obs.HistogramSnapshot) LatencyHistogram {
	h := LatencyHistogram{
		Bounds: obs.BucketBounds(),
		Counts: make([]int64, obs.NumBuckets),
		Count:  s.Count,
		Sum:    time.Duration(s.SumNanos),
	}
	copy(h.Counts, s.Counts[:])
	return h
}

// StageTimes is per-stage wall time through the search pipeline: signature
// generation, candidate collection + check filter, nearest-neighbor
// refinement, and exact verification.
type StageTimes struct {
	Signature time.Duration
	Collect   time.Duration
	Refine    time.Duration
	Verify    time.Duration
}

// StageLatencies bundles the four pipeline stages' latency distributions.
// Each observation is one timed search pass's wall time in that stage (see
// Config.StageSample; explained queries are always timed).
type StageLatencies struct {
	Signature LatencyHistogram
	Collect   LatencyHistogram
	Refine    LatencyHistogram
	Verify    LatencyHistogram
}

// StageLatencies returns the engine's per-stage latency histograms, merged
// across shards on a sharded engine.
func (e *Engine) StageLatencies() StageLatencies {
	var hs [core.NumStages]obs.HistogramSnapshot
	if e.sh != nil {
		hs = e.sh.StageLatencies()
	} else {
		hs = e.eng.StageLatencies()
	}
	return StageLatencies{
		Signature: fromSnapshot(hs[core.StageSignature]),
		Collect:   fromSnapshot(hs[core.StageCollect]),
		Refine:    fromSnapshot(hs[core.StageRefine]),
		Verify:    fromSnapshot(hs[core.StageVerify]),
	}
}

// ShardLatencies returns per-shard scatter-pass latency histograms,
// indexed by shard: every sharded query observes each shard's pass wall
// time, so a hot or slow shard shows as a diverging distribution. Nil on
// an unsharded engine.
func (e *Engine) ShardLatencies() []LatencyHistogram {
	if e.sh == nil {
		return nil
	}
	snaps := e.sh.ShardLatencies()
	out := make([]LatencyHistogram, len(snaps))
	for i, s := range snaps {
		out[i] = fromSnapshot(s)
	}
	return out
}
