package silkmoth_test

import (
	"fmt"

	"silkmoth"
)

// The paper's running example: searching the Location column of Table 1
// against the collection S of Table 2 under SET-CONTAINMENT finds only S4.
func ExampleEngine_Search() {
	collection := []silkmoth.Set{
		{Name: "S1", Elements: []string{
			"Mass Ave St Boston 02115", "77 Mass 5th St Boston", "77 Mass Ave 5th 02115"}},
		{Name: "S2", Elements: []string{
			"77 Boston MA", "77 5th St Boston 02115", "77 Mass Ave 02115 Seattle"}},
		{Name: "S3", Elements: []string{
			"77 Mass Ave 5th Boston MA", "Mass Ave Chicago IL", "77 Mass Ave St"}},
		{Name: "S4", Elements: []string{
			"77 Mass Ave MA", "5th St 02115 Seattle WA", "77 5th St Boston Seattle"}},
	}
	eng, err := silkmoth.NewEngine(collection, silkmoth.Config{
		Metric:     silkmoth.SetContainment,
		Similarity: silkmoth.Jaccard,
		Delta:      0.7,
	})
	if err != nil {
		panic(err)
	}
	matches, err := eng.Search(silkmoth.Set{Name: "Location", Elements: []string{
		"77 Mass Ave Boston MA",
		"5th St 02115 Seattle WA",
		"77 5th St Chicago IL",
	}})
	if err != nil {
		panic(err)
	}
	for _, m := range matches {
		fmt.Printf("%s containment=%.3f\n", m.Name, m.Relatedness)
	}
	// Output:
	// S4 containment=0.743
}

// Discovery finds every related pair within one collection: here two
// near-duplicate titles pair up under edit similarity despite typos.
func ExampleEngine_Discover() {
	titles := []silkmoth.Set{
		{Name: "t1", Elements: []string{"Database", "Systems", "Concepts"}},
		{Name: "t2", Elements: []string{"Databse", "Systems", "Concpts"}}, // typos
		{Name: "t3", Elements: []string{"Quantum", "Computing", "Basics"}},
	}
	eng, err := silkmoth.NewEngine(titles, silkmoth.Config{
		Metric:     silkmoth.SetSimilarity,
		Similarity: silkmoth.Eds,
		Delta:      0.7,
		Alpha:      0.7,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range eng.Discover() {
		fmt.Printf("%s ~ %s\n", p.RName, p.SName)
	}
	// Output:
	// t1 ~ t2
}
