package silkmoth

import (
	"testing"
)

// TestStageLatenciesPublic drives both engine shapes with every pass timed
// and checks the public observability surface: stage histograms populated,
// Stats carrying the stage time sums, per-shard latencies on the sharded
// engine only.
func TestStageLatenciesPublic(t *testing.T) {
	sets := allocCorpus(120)
	for _, shards := range []int{1, 3} {
		eng, err := NewEngine(sets, Config{
			Similarity:  Jaccard,
			Delta:       0.5,
			Alpha:       0.3,
			Shards:      shards,
			StageSample: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		const queries = 4
		for i := 0; i < queries; i++ {
			if _, err := eng.Search(sets[7]); err != nil {
				t.Fatal(err)
			}
		}
		wantPasses := int64(queries * shards)
		sl := eng.StageLatencies()
		for _, h := range []LatencyHistogram{sl.Signature, sl.Collect, sl.Refine, sl.Verify} {
			if h.Count != wantPasses {
				t.Errorf("shards=%d: stage histogram count = %d, want %d", shards, h.Count, wantPasses)
			}
			if len(h.Bounds) == 0 || len(h.Counts) != len(h.Bounds)+1 {
				t.Errorf("shards=%d: malformed histogram: %d bounds, %d counts", shards, len(h.Bounds), len(h.Counts))
			}
		}
		st := eng.Stats()
		if st.TimedPasses != wantPasses {
			t.Errorf("shards=%d: TimedPasses = %d, want %d", shards, st.TimedPasses, wantPasses)
		}
		if st.Stages.Signature <= 0 || st.Stages.Collect <= 0 || st.Stages.Verify <= 0 {
			t.Errorf("shards=%d: stage times not accumulated: %+v", shards, st.Stages)
		}
		shl := eng.ShardLatencies()
		if shards == 1 {
			if shl != nil {
				t.Errorf("unsharded engine reports shard latencies: %v", shl)
			}
			continue
		}
		if len(shl) != shards {
			t.Fatalf("got %d shard latency histograms, want %d", len(shl), shards)
		}
		for s, h := range shl {
			if h.Count != queries {
				t.Errorf("shard %d scatter count = %d, want %d", s, h.Count, queries)
			}
		}
	}
}

// TestExplainStages checks an explained query reports its per-stage wall
// time split alongside the funnel.
func TestExplainStages(t *testing.T) {
	sets := allocCorpus(120)
	eng, err := NewEngine(sets, Config{
		Similarity:  Jaccard,
		Delta:       0.5,
		Alpha:       0.3,
		StageSample: -1, // explain must time even with sampling disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Explain(sets[7])
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Explain
	if ex == nil {
		t.Fatal("no explain capture")
	}
	stagesSum := ex.Stages.Signature + ex.Stages.Collect + ex.Stages.Refine + ex.Stages.Verify
	if stagesSum <= 0 {
		t.Fatalf("explain stage times empty: %+v", ex.Stages)
	}
	if stagesSum > ex.Elapsed {
		t.Errorf("stage times %v exceed total elapsed %v", stagesSum, ex.Elapsed)
	}
}
