package silkmoth

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"silkmoth/internal/raceflag"
)

// TestCompressedEngineDifferentialGrid pins the tentpole's exactness
// contract: an engine over compressed posting containers must be
// indistinguishable from the uncompressed engine across the full
// metric × similarity × α × shard grid — through mutations, a zero-copy
// (mmap) snapshot reload with tombstones standing, WAL replay over the
// mapped image, and compaction. Scores, orderings, and explain funnels all
// have to match, not merely the answer sets.
func TestCompressedEngineDifferentialGrid(t *testing.T) {
	corpus := durableCorpus()
	type simCase struct {
		sim    Similarity
		alphas []float64
	}
	sims := []simCase{
		{Jaccard, []float64{0, 0.4}},
		{Dice, []float64{0}},
		{Cosine, []float64{0}},
		{Eds, []float64{0, 0.4}},
		{NEds, []float64{0.4}},
	}
	for _, metric := range []Metric{SetSimilarity, SetContainment} {
		for _, sc := range sims {
			for _, alpha := range sc.alphas {
				for _, shards := range []int{1, 2, 7} {
					t.Run(fmt.Sprintf("%v/%v/alpha=%v/shards=%d", metric, sc.sim, alpha, shards), func(t *testing.T) {
						base := Config{
							Metric:              metric,
							Similarity:          sc.sim,
							Delta:               0.5,
							Alpha:               alpha,
							Shards:              shards,
							CompactionThreshold: -1, // explicit Compact below
						}
						ref, err := NewEngine(corpus, base) // uncompressed reference
						if err != nil {
							t.Fatal(err)
						}
						ccfg := base
						ccfg.CompressedPostings = true
						ccfg.PostingCacheBytes = 4 << 10 // tiny: force eviction + streaming
						ccfg.DataDir = t.TempDir()
						ceng, err := NewEngine(corpus, ccfg)
						if err != nil {
							t.Fatal(err)
						}

						mutate := func(e *Engine) {
							t.Helper()
							if err := e.Delete(1); err != nil {
								t.Fatal(err)
							}
							if _, err := e.Update(3, Set{Name: "D+v2", Elements: []string{"Lake Shore Dr Chicago", "5th Ave"}}); err != nil {
								t.Fatal(err)
							}
							if err := e.Add([]Set{{Name: "I", Elements: []string{"Mass Ave", "Lake St Boston"}}}); err != nil {
								t.Fatal(err)
							}
						}
						mutate(ref)
						mutate(ceng)
						compareEngineSurfaces(t, "mutated", ref, ceng, true)
						if st := ceng.Stats(); !st.CompressedPostings || st.PostingEncodedBytes == 0 {
							t.Fatalf("compressed engine stats %+v, want compressed storage", st)
						}

						// Zero-copy reload with tombstones standing. Funnels
						// are not compared: the snapshot persists a compacted
						// image while the writers still probe dead postings.
						if err := ceng.Snapshot(); err != nil {
							t.Fatal(err)
						}
						if err := ceng.Close(); err != nil {
							t.Fatal(err)
						}
						loaded, err := NewEngine(nil, ccfg)
						if err != nil {
							t.Fatal(err)
						}
						st := loaded.Stats()
						if !st.RecoveredSnapshot || !st.CompressedPostings {
							t.Fatalf("reload stats %+v, want a compressed snapshot recovery", st)
						}
						if shards == 1 {
							if runtime.GOOS == "linux" && !st.SnapshotMapped {
								t.Fatal("unsharded compressed reload did not mmap the snapshot")
							}
							if st.PostingCacheMisses != 0 {
								t.Fatalf("reload decoded %d lists before any query", st.PostingCacheMisses)
							}
						}
						compareEngineSurfaces(t, "reloaded", ref, loaded, false)

						// Mutate the mapped engine so reopening replays the
						// WAL over a zero-copy load.
						extra := Set{Name: "J", Elements: []string{"77 Mass Ave Boston", "5th St"}}
						if err := ref.Add([]Set{extra}); err != nil {
							t.Fatal(err)
						}
						if err := loaded.Add([]Set{extra}); err != nil {
							t.Fatal(err)
						}
						compareEngineSurfaces(t, "mapped-mutated", ref, loaded, false)
						if err := loaded.Close(); err != nil {
							t.Fatal(err)
						}
						replayed, err := NewEngine(nil, ccfg)
						if err != nil {
							t.Fatal(err)
						}
						defer replayed.Close()
						if st := replayed.Stats(); st.WALReplayed == 0 {
							t.Fatalf("reopen stats %+v, want WAL replay over the snapshot", st)
						}
						compareEngineSurfaces(t, "wal-replayed", ref, replayed, false)

						// Compacted state: funnels must match again.
						ref.Compact()
						replayed.Compact()
						compareEngineSurfaces(t, "compacted", ref, replayed, true)
						if err := replayed.Snapshot(); err != nil {
							t.Fatal(err)
						}
						final, err := NewEngine(nil, ccfg)
						if err != nil {
							t.Fatal(err)
						}
						defer final.Close()
						compareEngineSurfaces(t, "compacted-reloaded", ref, final, true)
					})
				}
			}
		}
	}
}

// bigVocabCorpus is allocCorpus with a vocabulary that dwarfs the
// collection: ~6000 distinct words over 300 sets, so an eager snapshot load
// — which materializes one posting list per vocabulary token — allocates
// thousands of objects that a lazy load must not.
func bigVocabCorpus(n int) []Set {
	rng := rand.New(rand.NewSource(99))
	sets := make([]Set, n)
	for i := range sets {
		ne := 3 + rng.Intn(5)
		elems := make([]string, ne)
		for j := range elems {
			k := 2 + rng.Intn(4)
			s := ""
			for w := 0; w < k; w++ {
				if w > 0 {
					s += " "
				}
				s += fmt.Sprintf("word%04d", rng.Intn(6000))
			}
			elems[j] = s
		}
		sets[i] = Set{Name: fmt.Sprintf("S%d", i), Elements: elems}
	}
	return sets
}

// TestCompressedLazyLoadAllocationBudget pins satellite property of the
// zero-copy load: opening a compressed snapshot allocates O(probed tokens),
// not O(vocabulary). The eager (uncompressed) load materializes every
// posting list up front; the lazy load must sit far below it, decode nothing
// until the first query, and then decode at most the tokens that query
// probed.
func TestCompressedLazyLoadAllocationBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	sets := bigVocabCorpus(300)
	eagerCfg := Config{Similarity: Jaccard, Delta: 0.5, DataDir: t.TempDir()}
	lazyCfg := Config{Similarity: Jaccard, Delta: 0.5, DataDir: t.TempDir(), CompressedPostings: true}
	for _, cfg := range []Config{eagerCfg, lazyCfg} {
		eng, err := NewEngine(sets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}

	open := func(cfg Config) func() {
		return func() {
			loaded, err := NewEngine(nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !loaded.Stats().RecoveredSnapshot {
				t.Fatal("load fell back to a heap build")
			}
			loaded.Close()
		}
	}
	eagerAllocs := testing.AllocsPerRun(5, open(eagerCfg))
	lazyAllocs := testing.AllocsPerRun(5, open(lazyCfg))
	// Both loads decode the collection (O(corpus), unavoidable); what the
	// lazy load must NOT do is materialize one posting list per vocabulary
	// token on top. The allocation gap between the two loads is exactly
	// that per-token work, so it must scale with the vocabulary.
	vocab := map[string]struct{}{}
	for _, s := range sets {
		for _, e := range s.Elements {
			for _, w := range strings.Fields(e) {
				vocab[w] = struct{}{}
			}
		}
	}
	t.Logf("lazy load: %.0f allocs, eager load: %.0f, vocabulary: %d tokens",
		lazyAllocs, eagerAllocs, len(vocab))
	if eagerAllocs-lazyAllocs < float64(len(vocab))/2 {
		t.Errorf("lazy load allocates %.0f vs %.0f eager over a %d-token vocabulary — the lazy path is still doing per-vocabulary work",
			lazyAllocs, eagerAllocs, len(vocab))
	}

	// Decode work is demand-driven: none at open, bounded by the probed
	// signature tokens after one query.
	loaded, err := NewEngine(nil, lazyCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if st := loaded.Stats(); st.PostingCacheMisses != 0 || st.PostingResidentBytes != 0 {
		t.Fatalf("open decoded lists before any query: %+v", st)
	}
	res, err := loaded.Explain(sets[7])
	if err != nil {
		t.Fatal(err)
	}
	st := loaded.Stats()
	if st.PostingCacheMisses == 0 {
		t.Fatal("query decoded nothing — probes are not reaching the containers")
	}
	if st.PostingCacheMisses > int64(res.Explain.SigTokens) {
		t.Errorf("one query decoded %d lists but probed only %d signature tokens — decode is not demand-driven",
			st.PostingCacheMisses, res.Explain.SigTokens)
	}
}

// TestCompressedSteadyStateSearchAllocs holds the compressed engine to the
// same steady-state search budget as the heap engine: once the cache holds
// the query's working set, probes are zero-copy and allocation-free.
func TestCompressedSteadyStateSearchAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	sets := allocCorpus(300)
	eng, err := NewEngine(sets, Config{
		Similarity:         Jaccard,
		Delta:              0.5,
		Alpha:              0.3,
		CompressedPostings: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := sets[7]
	measureAllocs(t, "Search(compressed)", searchAllocBudget, func() {
		if _, err := eng.Search(ref); err != nil {
			t.Fatal(err)
		}
	})
}
