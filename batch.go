package silkmoth

import (
	"context"
	"fmt"
	"time"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/shard"
)

// SearchBatch answers one related-set search per reference set in a
// single call. The whole batch is tokenized in one pass — amortizing
// dictionary interning across queries — and the searches run concurrently,
// bounded by Config.Concurrency; on a sharded engine each query
// additionally fans out across all shards. Results are positionally
// aligned with refs, each sorted exactly as Search sorts. Options apply to
// every item of the batch (a WithExplain capture sums the items' funnels);
// for per-item options use SearchBatchQueries.
func (e *Engine) SearchBatch(refs []Set, opts ...QueryOption) ([][]Match, error) {
	return e.SearchBatchContext(context.Background(), refs, opts...)
}

// SearchBatchContext is SearchBatch with cancellation: the first failed or
// cancelled query aborts the remaining ones.
func (e *Engine) SearchBatchContext(ctx context.Context, refs []Set, opts ...QueryOption) ([][]Match, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	qo, err := compileOptions(opts)
	if err != nil {
		return nil, err
	}
	q, ps := qo.coreQuery()
	var qs []*core.Query
	if q != nil {
		// One shared query (and stats capture) for the whole batch: the
		// overrides are uniform and the explain aggregates across items.
		qs = make([]*core.Query, len(refs))
		for i := range qs {
			qs[i] = q
		}
	}
	var start time.Time
	if qo.explain != nil {
		start = time.Now()
	}
	// The read lock must span result conversion too: finishMatches reads
	// e.coll, which a concurrent Add/Delete/Compact mutates.
	e.mu.RLock()
	defer e.mu.RUnlock()
	per, err := e.searchBatchCore(ctx, refs, qs)
	if err != nil {
		return nil, err
	}
	out := make([][]Match, len(per))
	for i, ms := range per {
		m := e.finishMatches(ms)
		if qo.hasK && len(m) > qo.k {
			m = m[:qo.k]
		}
		out[i] = m
	}
	qo.finishExplain(ps, time.Since(start))
	return out, nil
}

// SearchBatchQueries is the per-item form of SearchBatch: each BatchQuery
// carries its own option list, so one batch can mix pinned and automatic
// signature schemes, per-item k and δ, and per-item explain captures —
// results are exactly what Search with the same options returns for each
// item. The batch still tokenizes in one pass and shares the engine's
// worker fan-out.
func (e *Engine) SearchBatchQueries(queries []BatchQuery) ([]Result, error) {
	return e.SearchBatchQueriesContext(context.Background(), queries)
}

// SearchBatchQueriesContext is SearchBatchQueries with cancellation: the
// first failed or cancelled item aborts the remaining ones.
func (e *Engine) SearchBatchQueriesContext(ctx context.Context, queries []BatchQuery) ([]Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	refs := make([]Set, len(queries))
	qos := make([]queryOptions, len(queries))
	var qs []*core.Query
	for i := range queries {
		refs[i] = queries[i].Set
		qo, err := compileOptions(queries[i].Options)
		if err != nil {
			return nil, fmt.Errorf("silkmoth: batch item %d: %w", i, err)
		}
		qos[i] = qo
		if q, _ := qos[i].coreQuery(); q != nil {
			if qs == nil {
				qs = make([]*core.Query, len(queries))
			}
			qs[i] = q
		}
	}
	// The read lock must span result conversion too: finishMatches reads
	// e.coll, which a concurrent Add/Delete/Compact mutates.
	e.mu.RLock()
	defer e.mu.RUnlock()
	per, err := e.searchBatchCore(ctx, refs, qs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(per))
	for i, ms := range per {
		m := e.finishMatches(ms)
		if qos[i].hasK && len(m) > qos[i].k {
			m = m[:qos[i].k]
		}
		out[i] = Result{Matches: m}
		if qos[i].explain != nil {
			// Batch items time themselves (the fan-out workers measure
			// around each item's passes), so the capture's own elapsed
			// stands in for the single-query wall clock.
			qos[i].finishExplain(qs[i].Stats, -1)
			out[i].Explain = qos[i].explain
		}
	}
	return out, nil
}

// searchBatchCore tokenizes the batch and fans it out on whichever engine
// backs e. qs, when non-nil, aligns per-item queries with refs. Callers
// must hold at least the read lock — and keep holding it while converting
// the returned core matches, whose indices are only meaningful against
// the collection they were computed on.
func (e *Engine) searchBatchCore(ctx context.Context, refs []Set, qs []*core.Query) ([][]core.Match, error) {
	qc, release := e.tokenizeQuery(refs)
	defer release()
	if e.sh != nil {
		rs := make([]*dataset.Set, len(qc.Sets))
		for i := range qc.Sets {
			rs[i] = &qc.Sets[i]
		}
		return e.sh.SearchBatchQueries(ctx, rs, qs)
	}
	return e.searchBatchSerial(ctx, qc, qs)
}

// searchBatchSerial fans a batch across the unsharded engine: queries run
// concurrently on up to Concurrency workers, each owning one reusable
// core.Searcher (verification runs serially within a pass — the batch's
// parallelism is across queries, so it never compounds with per-pass
// verification fan-out). Callers must hold at least the read lock.
func (e *Engine) searchBatchSerial(ctx context.Context, qc *dataset.Collection, qs []*core.Query) ([][]core.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := shard.Workers(e.eng.Options().Concurrency, len(qc.Sets))
	searchers := make([]*core.Searcher, workers)
	for w := range searchers {
		searchers[w] = e.eng.NewSearcher()
	}
	defer func() {
		for _, sr := range searchers {
			sr.Close()
		}
	}()
	out := make([][]core.Match, len(qc.Sets))
	err := shard.FanOut(ctx, len(qc.Sets), workers, func(ctx context.Context, w, qi int) error {
		var q *core.Query
		if qs != nil {
			q = qs[qi]
		}
		var start time.Time
		timed := q != nil && q.Stats != nil
		if timed {
			start = time.Now()
		}
		ms, err := searchers[w].SearchQuery(ctx, &qc.Sets[qi], -1, q)
		if err != nil {
			return err
		}
		if timed {
			q.Stats.AddElapsed(time.Since(start))
		}
		out[qi] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
