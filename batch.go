package silkmoth

import (
	"context"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/shard"
)

// SearchBatch answers one related-set search per reference set in a
// single call. The whole batch is tokenized in one pass — amortizing
// dictionary interning across queries — and the searches run concurrently,
// bounded by Config.Concurrency; on a sharded engine each query
// additionally fans out across all shards. Results are positionally
// aligned with refs, each sorted exactly as Search sorts.
func (e *Engine) SearchBatch(refs []Set) ([][]Match, error) {
	return e.SearchBatchContext(context.Background(), refs)
}

// SearchBatchContext is SearchBatch with cancellation: the first failed or
// cancelled query aborts the remaining ones.
func (e *Engine) SearchBatchContext(ctx context.Context, refs []Set) ([][]Match, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	qc := e.tokenizeQuery(refs)

	var per [][]core.Match
	var err error
	if e.sh != nil {
		rs := make([]*dataset.Set, len(qc.Sets))
		for i := range qc.Sets {
			rs[i] = &qc.Sets[i]
		}
		per, err = e.sh.SearchBatchContext(ctx, rs)
	} else {
		per, err = e.searchBatchSerial(ctx, qc)
	}
	if err != nil {
		return nil, err
	}
	out := make([][]Match, len(per))
	for i, ms := range per {
		out[i] = e.toMatches(ms)
		if e.sh == nil {
			sortMatches(out[i]) // the sharded engine already emits canonical order
		}
	}
	return out, nil
}

// searchBatchSerial fans a batch across the unsharded engine: queries run
// concurrently on up to Concurrency workers, each owning one reusable
// core.Searcher (verification runs serially within a pass — the batch's
// parallelism is across queries, so it never compounds with per-pass
// verification fan-out). Callers must hold at least the read lock.
func (e *Engine) searchBatchSerial(ctx context.Context, qc *dataset.Collection) ([][]core.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := shard.Workers(e.eng.Options().Concurrency, len(qc.Sets))
	searchers := make([]*core.Searcher, workers)
	for w := range searchers {
		searchers[w] = e.eng.NewSearcher()
	}
	defer func() {
		for _, sr := range searchers {
			sr.Close()
		}
	}()
	out := make([][]core.Match, len(qc.Sets))
	err := shard.FanOut(ctx, len(qc.Sets), workers, func(ctx context.Context, w, qi int) error {
		ms, err := searchers[w].Search(ctx, &qc.Sets[qi], -1)
		if err != nil {
			return err
		}
		out[qi] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
