package silkmoth_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// apiGoldenFile is the checked-in snapshot of the public silkmoth API.
// TestPublicAPIGolden fails on ANY drift — removals, signature changes,
// and additions alike — so every API change is an explicit, reviewed edit
// of this file:
//
//	SILKMOTH_UPDATE_API=1 go test -run TestPublicAPIGolden .
//
// This is the dependency-free equivalent of a go-apidiff gate: it cannot
// see constant values or type identity across renames, but it pins every
// exported name, signature, struct field, and method, which is what
// source compatibility needs.
const apiGoldenFile = "api/silkmoth.txt"

func TestPublicAPIGolden(t *testing.T) {
	got := renderPublicAPI(t, ".")
	if os.Getenv("SILKMOTH_UPDATE_API") == "1" {
		if err := os.MkdirAll(filepath.Dir(apiGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", apiGoldenFile)
		return
	}
	want, err := os.ReadFile(apiGoldenFile)
	if err != nil {
		t.Fatalf("reading API golden: %v\nregenerate with: SILKMOTH_UPDATE_API=1 go test -run TestPublicAPIGolden .", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	gotSet := make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		wantSet[l] = true
	}
	var diff []string
	for _, l := range wantLines {
		if !gotSet[l] {
			diff = append(diff, "- "+l)
		}
	}
	for _, l := range gotLines {
		if !wantSet[l] {
			diff = append(diff, "+ "+l)
		}
	}
	t.Fatalf("public API drifted from %s:\n%s\n\nIf this change is intentional (additive changes included), regenerate the golden:\n\tSILKMOTH_UPDATE_API=1 go test -run TestPublicAPIGolden .",
		apiGoldenFile, strings.Join(diff, "\n"))
}

// renderPublicAPI parses the package's non-test sources in dir and renders
// one line (or block) per exported declaration: functions and methods with
// full signatures, types with exported struct fields and interface
// methods, and exported consts and vars. Output is sorted, so the
// rendering is stable across file reorganizations.
func renderPublicAPI(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []string
	for _, path := range paths {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			entries = append(entries, renderDecl(t, fset, decl)...)
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n") + "\n"
}

func renderDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{printNode(t, fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			out = append(out, renderSpec(t, fset, d.Tok, spec)...)
		}
		return out
	default:
		return nil
	}
}

// receiverExported reports whether a function's receiver (if any) names an
// exported type — methods on unexported types are not public API.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

func renderSpec(t *testing.T, fset *token.FileSet, tok token.Token, spec ast.Spec) []string {
	switch sp := spec.(type) {
	case *ast.ValueSpec:
		exported := false
		for _, name := range sp.Names {
			if name.IsExported() {
				exported = true
			}
		}
		if !exported {
			return nil
		}
		v := *sp
		v.Doc, v.Comment = nil, nil
		return []string{tok.String() + " " + printNode(t, fset, &v)}
	case *ast.TypeSpec:
		if !sp.Name.IsExported() {
			return nil
		}
		ts := *sp
		ts.Doc, ts.Comment = nil, nil
		stripUnexportedMembers(&ts)
		return []string{"type " + printNode(t, fset, &ts)}
	default:
		return nil
	}
}

// stripUnexportedMembers drops unexported struct fields and interface
// methods so internal layout changes don't churn the golden.
func stripUnexportedMembers(ts *ast.TypeSpec) {
	switch typ := ts.Type.(type) {
	case *ast.StructType:
		typ.Fields.List = filterFields(typ.Fields.List)
	case *ast.InterfaceType:
		typ.Methods.List = filterFields(typ.Methods.List)
	}
}

func filterFields(fields []*ast.Field) []*ast.Field {
	var out []*ast.Field
	for _, f := range fields {
		f.Doc, f.Comment = nil, nil
		if len(f.Names) == 0 {
			out = append(out, f) // embedded: keep (type name carries export)
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		f.Names = names
		out = append(out, f)
	}
	return out
}

func printNode(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		t.Fatalf("printing node: %v", err)
	}
	// Collapse whitespace runs so the rendering ignores source formatting.
	return strings.Join(strings.Fields(buf.String()), " ")
}
