package silkmoth

import (
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/wal/failfs"
)

// The crash-injection harness: run a deterministic workload of mutations
// and snapshots over the crash-modeling filesystem, crash it at EVERY
// write/sync point in turn, recover from the post-crash disk image, and
// require the recovered engine to hold exactly the logical state the
// durability contract promises — every acknowledged mutation, possibly
// plus the one mutation the crash interrupted (whose record may have
// reached the disk even though the call returned an error), and nothing
// else. The recovered engine must then answer queries bit-identically to
// a fresh heap-built oracle over the surviving sets.

// crashModel mirrors the engine's logical state: an id-indexed slot table
// where Add and Update append at the end (reproducing the engine's id
// assignment) and Delete and Update tombstone.
type crashModel struct {
	slots []Set
	alive []bool
}

func (m *crashModel) clone() *crashModel {
	return &crashModel{
		slots: append([]Set(nil), m.slots...),
		alive: append([]bool(nil), m.alive...),
	}
}

func (m *crashModel) add(sets []Set) {
	for _, s := range sets {
		m.slots = append(m.slots, s)
		m.alive = append(m.alive, true)
	}
}

func (m *crashModel) del(id int) { m.alive[id] = false }

func (m *crashModel) update(id int, s Set) {
	m.alive[id] = false
	m.add([]Set{s})
}

// live returns the live sets in id order — the order recovered engines,
// fresh rebuilds, and snapshots all agree on.
func (m *crashModel) live() []Set {
	var out []Set
	for i, s := range m.slots {
		if m.alive[i] {
			out = append(out, s)
		}
	}
	return out
}

// crashOp is one workload step. apply is the op's logical effect on the
// model — nil for non-mutating steps (Snapshot).
type crashOp struct {
	name  string
	run   func(e *Engine) error
	apply func(m *crashModel)
}

func opAdd(sets ...Set) crashOp {
	return crashOp{
		name:  fmt.Sprintf("add %d", len(sets)),
		run:   func(e *Engine) error { return e.Add(sets) },
		apply: func(m *crashModel) { m.add(sets) },
	}
}

func opDelete(id int) crashOp {
	return crashOp{
		name:  fmt.Sprintf("delete %d", id),
		run:   func(e *Engine) error { return e.Delete(id) },
		apply: func(m *crashModel) { m.del(id) },
	}
}

func opUpdate(id int, s Set) crashOp {
	return crashOp{
		name:  fmt.Sprintf("update %d", id),
		run:   func(e *Engine) error { _, err := e.Update(id, s); return err },
		apply: func(m *crashModel) { m.update(id, s) },
	}
}

func opSnapshot() crashOp {
	return crashOp{
		name: "snapshot",
		run:  func(e *Engine) error { return e.Snapshot() },
	}
}

func crashBootstrap() []Set {
	return []Set{
		{Name: "A", Elements: []string{"77 Mass Ave", "5th St", "Main St"}},
		{Name: "B", Elements: []string{"77 5th St", "Mass Ave Boston"}},
		{Name: "C", Elements: []string{"Main St Chicago", "5th Ave"}},
		{Name: "D", Elements: []string{"Lake Shore Dr", "Main St"}},
		{Name: "E", Elements: []string{"77 Mass Ave", "Lake Shore Dr"}},
		{Name: "F", Elements: []string{"5th Ave Chicago", "Mass Ave"}},
	}
}

// crashScript is the fixed workload: adds, deletes, updates, and snapshot
// rotations, with ids chosen so every phase touches sets created in every
// earlier phase. Bootstrap ids are 0–5; appends follow deterministically.
func crashScript() []crashOp {
	set := func(name string, elems ...string) Set { return Set{Name: name, Elements: elems} }
	return []crashOp{
		opAdd( // ids 6, 7
			set("G", "77 Mass Ave Boston", "Lake St"),
			set("H", "5th St", "Main St Chicago"),
		),
		opDelete(1),
		opUpdate(3, set("D+v2", "Lake Shore Dr Chicago", "5th Ave")), // id 8
		opSnapshot(),
		opAdd(set("I", "Mass Ave", "Lake St Boston")), // id 9
		opDelete(6),
		opUpdate(0, set("A+v2", "77 Mass Ave", "Main St")), // id 10
		opAdd( // ids 11, 12
			set("J", "5th Ave", "77 5th St"),
			set("K", "Lake Shore Dr", "Main St Boston"),
		),
		opSnapshot(),
		opDelete(9),
		opUpdate(8, set("D+v3", "Lake Shore Dr", "5th Ave Chicago")), // id 13
		opAdd(set("L", "Mass Ave Boston", "Lake St")),                // id 14
	}
}

// runCrashScript builds a durable engine over fsys (bootstrapping from
// boot) and drives script against it, pressing on after the injected
// crash fires (later ops fail, as a real caller would see). It returns
// the model holding every acknowledged mutation, the logical effect of
// the mutation the crash interrupted mid-append (nil if the crash hit a
// non-mutating op or construction), the number of ops that returned
// errors, and the construction error if the engine never came up.
func runCrashScript(fsys *failfs.FS, boot []Set, cfg Config, script []crashOp) (model *crashModel, extra func(*crashModel), opErrs int, buildErr error) {
	model = &crashModel{}
	model.add(boot)
	eng, err := newDurableEngine(func() (*Engine, error) { return newHeapEngine(boot, cfg) }, cfg, fsys)
	if err != nil {
		return model, nil, 0, err
	}
	defer eng.Close()
	for _, op := range script {
		crashedBefore := fsys.Crashed()
		err := op.run(eng)
		if err == nil {
			if op.apply != nil {
				op.apply(model)
			}
			continue
		}
		opErrs++
		// Only the mutation the crash fired inside can have left a durable
		// record without acknowledging: later mutations fail before
		// touching the disk (the log latches broken), and ops that failed
		// their liveness check never logged at all.
		if op.apply != nil && !crashedBefore && fsys.Crashed() && extra == nil {
			extra = op.apply
		}
	}
	return model, extra, opErrs, nil
}

// liveRaws reads the engine's live sets, in id order, back out as raw
// public sets.
func liveRaws(e *Engine) []Set {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []Set
	for i := range e.coll.Sets {
		if !e.liveLocked(i) {
			continue
		}
		s := &e.coll.Sets[i]
		elems := make([]string, len(s.Elements))
		for j := range s.Elements {
			elems[j] = s.Elements[j].Raw
		}
		out = append(out, Set{Name: s.Name, Elements: elems})
	}
	return out
}

func rawSetsEqual(a, b []Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Elements) != len(b[i].Elements) {
			return false
		}
		for j := range a[i].Elements {
			if a[i].Elements[j] != b[i].Elements[j] {
				return false
			}
		}
	}
	return true
}

func setNames(sets []Set) []string {
	names := make([]string, len(sets))
	for i, s := range sets {
		names[i] = s.Name
	}
	return names
}

// verifyRecovery mounts the post-crash disk, recovers, and checks the two
// halves of the durability contract: the recovered logical state is
// stateAfter(m) or stateAfter(m+1), and the recovered engine's full query
// surface — Discover and a Search per surviving set — is bit-identical to
// a fresh heap-built oracle over the recovered survivors.
func verifyRecovery(t *testing.T, label string, disk *failfs.FS, boot []Set, cfg Config, model *crashModel, extra func(*crashModel)) {
	t.Helper()
	rec, err := newDurableEngine(func() (*Engine, error) { return newHeapEngine(boot, cfg) }, cfg, disk)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer rec.Close()

	got := liveRaws(rec)
	wantA := model.live()
	ok := rawSetsEqual(got, wantA)
	if !ok && extra != nil {
		mb := model.clone()
		extra(mb)
		if rawSetsEqual(got, mb.live()) {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("%s: recovered state %v is neither stateAfter(m) %v nor stateAfter(m+1)",
			label, setNames(got), setNames(wantA))
	}

	// Oracle: a fresh heap build over exactly the surviving sets. The
	// recovered engine's live ids ascend, and the oracle assigns dense ids
	// in the same order, so canonical orderings agree pair for pair.
	heapCfg := cfg
	heapCfg.DataDir = ""
	oracle, err := NewEngine(got, heapCfg)
	if err != nil {
		t.Fatalf("%s: oracle build: %v", label, err)
	}
	if rec.Len() != oracle.Len() {
		t.Fatalf("%s: recovered Len = %d, oracle %d", label, rec.Len(), oracle.Len())
	}

	wantPairs := oracle.Discover()
	gotPairs := rec.Discover()
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("%s: %d discovered pairs, oracle found %d", label, len(gotPairs), len(wantPairs))
	}
	for i := range wantPairs {
		g, w := gotPairs[i], wantPairs[i]
		if g.RName != w.RName || g.SName != w.SName ||
			g.Relatedness != w.Relatedness || g.MatchingScore != w.MatchingScore {
			t.Fatalf("%s: pair %d = %+v, oracle %+v", label, i, g, w)
		}
	}
	for _, q := range got {
		gotMs, err := rec.Search(q)
		if err != nil {
			t.Fatalf("%s: search %q: %v", label, q.Name, err)
		}
		wantMs, err := oracle.Search(q)
		if err != nil {
			t.Fatalf("%s: oracle search %q: %v", label, q.Name, err)
		}
		gk, wk := matchKeys(gotMs), matchKeys(wantMs)
		if len(gk) != len(wk) {
			t.Fatalf("%s: query %q: %d matches, oracle %d", label, q.Name, len(gk), len(wk))
		}
		for i := range wk {
			if gk[i] != wk[i] {
				t.Fatalf("%s: query %q match %d = %+v, oracle %+v", label, q.Name, i, gk[i], wk[i])
			}
		}
	}

	// The recovered engine must stay writable: its log is live again.
	if err := rec.Add([]Set{{Name: "post-recovery", Elements: []string{"Lake St"}}}); err != nil {
		t.Fatalf("%s: recovered engine rejects mutations: %v", label, err)
	}
}

// TestCrashRecoveryEveryWriteSyncPoint enumerates every filesystem
// write/sync point the workload performs — snapshot section writes, file
// syncs, renames, directory syncs, log appends — and crashes at each one.
func TestCrashRecoveryEveryWriteSyncPoint(t *testing.T) {
	boot := crashBootstrap()
	for _, shards := range []int{0, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config{
				Metric:     SetSimilarity,
				Similarity: Jaccard,
				Delta:      0.5,
				Shards:     shards,
				DataDir:    "failfs://crash-harness", // labels errors; the FS is injected directly
			}
			script := crashScript()

			// Uninjected dry run: learn the op count and prove the model
			// mirrors the engine exactly when nothing goes wrong.
			calm := failfs.New()
			model, extra, opErrs, err := runCrashScript(calm, boot, cfg, script)
			if err != nil {
				t.Fatalf("uninjected build: %v", err)
			}
			if opErrs != 0 || extra != nil {
				t.Fatalf("uninjected run hit %d op errors", opErrs)
			}
			verifyRecovery(t, "uninjected", calm.Disk(), boot, cfg, model, nil)
			totalOps := calm.Ops()
			if totalOps < 30 {
				t.Fatalf("workload performed only %d fs ops — harness lost its coverage", totalOps)
			}

			for k := 0; k < totalOps; k++ {
				fs := failfs.New()
				fs.FailAt(k)
				model, extra, _, err := runCrashScript(fs, boot, cfg, script)
				label := fmt.Sprintf("k=%d", k)
				if err == nil && !fs.Crashed() {
					t.Fatalf("%s: crash never fired (totalOps=%d)", label, totalOps)
				}
				verifyRecovery(t, label, fs.Disk(), boot, cfg, model, extra)
			}
		})
	}
}

// TestMetamorphicCrashRecovery is the randomized companion: random
// mutation interleavings with snapshots at random prefixes, crashed at a
// random write/sync point, must recover to a state explainable by the
// acknowledged mutations — and answer queries exactly like a fresh
// rebuild over the survivors.
func TestMetamorphicCrashRecovery(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(0x51f7))
	for trial := 0; trial < trials; trial++ {
		shards := 0
		if trial%3 == 2 {
			shards = 1 + rng.Intn(3)
		}
		cfg := Config{
			Metric:     SetSimilarity,
			Similarity: Jaccard,
			Delta:      0.5,
			Shards:     shards,
			DataDir:    "failfs://metamorphic",
		}
		boot := randomCorpus(rng, 4+rng.Intn(4))

		// Generate a random script against a planning model, so deletes
		// and updates always target ids that are live at that point.
		plan := &crashModel{}
		plan.add(boot)
		nextName := 0
		fresh := func() Set {
			nextName++
			s := randomCorpus(rng, 1)[0]
			s.Name = fmt.Sprintf("M%d", nextName)
			return s
		}
		liveIDs := func() []int {
			var ids []int
			for i, a := range plan.alive {
				if a {
					ids = append(ids, i)
				}
			}
			return ids
		}
		var script []crashOp
		nOps := 6 + rng.Intn(10)
		for len(script) < nOps {
			switch ids := liveIDs(); {
			case rng.Intn(5) == 0:
				script = append(script, opSnapshot())
			case rng.Intn(3) == 0 && len(ids) > 2:
				id := ids[rng.Intn(len(ids))]
				script = append(script, opDelete(id))
				plan.del(id)
			case rng.Intn(3) == 0 && len(ids) > 0:
				id := ids[rng.Intn(len(ids))]
				s := fresh()
				script = append(script, opUpdate(id, s))
				plan.update(id, s)
			default:
				sets := []Set{fresh()}
				if rng.Intn(2) == 0 {
					sets = append(sets, fresh())
				}
				script = append(script, opAdd(sets...))
				plan.add(sets)
			}
		}

		calm := failfs.New()
		if _, _, opErrs, err := runCrashScript(calm, boot, cfg, script); err != nil || opErrs != 0 {
			t.Fatalf("trial %d: uninjected run: err=%v opErrs=%d", trial, err, opErrs)
		}
		totalOps := calm.Ops()

		// A handful of random crash points per script keeps the randomized
		// search wide; the exhaustive sweep lives in the harness above.
		for probe := 0; probe < 4; probe++ {
			k := rng.Intn(totalOps)
			fs := failfs.New()
			fs.FailAt(k)
			model, extra, _, err := runCrashScript(fs, boot, cfg, script)
			label := fmt.Sprintf("trial=%d k=%d shards=%d", trial, k, shards)
			if err == nil && !fs.Crashed() {
				t.Fatalf("%s: crash never fired (totalOps=%d)", label, totalOps)
			}
			verifyRecovery(t, label, fs.Disk(), boot, cfg, model, extra)
		}
	}
}
