package silkmoth

import (
	"context"
	"fmt"
	"testing"
)

// matchesEqual asserts two match lists are bit-identical.
func matchesEqual(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d differs: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// TestWithSchemePinMatchesFixedEngine pins the per-query scheme override:
// on an Auto engine, a query pinned to any fixed scheme must return
// bit-identical results to an engine built with that scheme, and the
// explain capture must report the pinned concrete scheme — serial and
// sharded.
func TestWithSchemePinMatchesFixedEngine(t *testing.T) {
	sets := autoGridCorpus(101, 24)
	queries := autoGridCorpus(102, 5)
	for _, shards := range []int{1, 2, 7} {
		base := Config{Similarity: Jaccard, Delta: 0.6, Alpha: 0.5, Shards: shards}
		autoCfg := base
		autoCfg.Scheme = SchemeAuto
		autoEng, err := NewEngine(sets, autoCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, pin := range []Scheme{SchemeDichotomy, SchemeSkyline, SchemeWeighted, SchemeCombUnweighted} {
			fixedCfg := base
			fixedCfg.Scheme = pin
			fixedEng, err := NewEngine(sets, fixedCfg)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				label := fmt.Sprintf("shards=%d pin=%v query=%d", shards, pin, qi)
				var ex Explain
				pinned, err := autoEng.Search(q, WithScheme(pin), WithExplain(&ex))
				if err != nil {
					t.Fatal(err)
				}
				fixed, err := fixedEng.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				matchesEqual(t, label, pinned, fixed)
				if ex.FullScans == 0 && ex.Scheme != pin.String() {
					t.Fatalf("%s: explain scheme %q, want %q", label, ex.Scheme, pin)
				}
			}
		}
	}
}

// TestBatchMixedSchemesMatchesFixedEngines is the per-item batch
// equivalence: an Auto-engine batch mixing pinned and auto items must
// return results bit-identical to per-query searches on fixed-scheme
// engines (pinned items) and on the Auto engine itself (auto items) —
// serial and sharded at N ∈ {1, 2, 7}.
func TestBatchMixedSchemesMatchesFixedEngines(t *testing.T) {
	sets := autoGridCorpus(103, 30)
	queries := autoGridCorpus(104, 9)
	pins := []Scheme{SchemeDichotomy, SchemeSkyline, SchemeWeighted, SchemeCombUnweighted}
	for _, shards := range []int{1, 2, 7} {
		base := Config{Similarity: Jaccard, Delta: 0.6, Alpha: 0.5, Shards: shards, Concurrency: 3}
		autoCfg := base
		autoCfg.Scheme = SchemeAuto
		autoEng, err := NewEngine(sets, autoCfg)
		if err != nil {
			t.Fatal(err)
		}
		fixedEngs := make(map[Scheme]*Engine, len(pins))
		for _, pin := range pins {
			cfg := base
			cfg.Scheme = pin
			fixedEngs[pin], err = NewEngine(sets, cfg)
			if err != nil {
				t.Fatal(err)
			}
		}

		// Items alternate: pinned to each scheme in turn, with every third
		// item left on Auto.
		batch := make([]BatchQuery, len(queries))
		explains := make([]Explain, len(queries))
		itemPin := make([]Scheme, len(queries))
		itemAuto := make([]bool, len(queries))
		for i, q := range queries {
			batch[i] = BatchQuery{Set: q, Options: []QueryOption{WithExplain(&explains[i])}}
			if i%3 == 2 {
				itemAuto[i] = true
				continue
			}
			itemPin[i] = pins[i%len(pins)]
			batch[i].Options = append(batch[i].Options, WithScheme(itemPin[i]))
		}
		results, err := autoEng.SearchBatchQueries(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(queries) {
			t.Fatalf("shards=%d: got %d results, want %d", shards, len(results), len(queries))
		}
		for i, res := range results {
			label := fmt.Sprintf("shards=%d item=%d", shards, i)
			var want []Match
			if itemAuto[i] {
				want, err = autoEng.Search(queries[i])
			} else {
				want, err = fixedEngs[itemPin[i]].Search(queries[i])
			}
			if err != nil {
				t.Fatal(err)
			}
			matchesEqual(t, label, res.Matches, want)
			if res.Explain == nil {
				t.Fatalf("%s: missing per-item explain", label)
			}
			if !itemAuto[i] && res.Explain.FullScans == 0 && res.Explain.Scheme != itemPin[i].String() {
				t.Fatalf("%s: explain scheme %q, want pinned %q", label, res.Explain.Scheme, itemPin[i])
			}
		}
	}
}

// TestWithDeltaMatchesRebuiltEngine pins the per-query δ override: results
// must be exactly those of an engine built with that δ, serial and
// sharded, for both metrics.
func TestWithDeltaMatchesRebuiltEngine(t *testing.T) {
	sets := autoGridCorpus(105, 24)
	queries := autoGridCorpus(106, 5)
	for _, metric := range []Metric{SetSimilarity, SetContainment} {
		for _, shards := range []int{1, 3} {
			for _, delta := range []float64{0.4, 0.8} {
				loose := Config{Metric: metric, Similarity: Jaccard, Delta: 0.6, Shards: shards}
				eng, err := NewEngine(sets, loose)
				if err != nil {
					t.Fatal(err)
				}
				rebuilt := loose
				rebuilt.Delta = delta
				wantEng, err := NewEngine(sets, rebuilt)
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range queries {
					got, err := eng.Search(q, WithDelta(delta))
					if err != nil {
						t.Fatal(err)
					}
					want, err := wantEng.Search(q)
					if err != nil {
						t.Fatal(err)
					}
					matchesEqual(t, fmt.Sprintf("%v shards=%d δ=%g query=%d", metric, shards, delta, qi), got, want)
				}
			}
		}
	}
}

// TestWithKMatchesTopK pins the three top-k spellings against each other:
// WithK, SearchTopK, and truncating a full Search must agree bit-for-bit,
// serial and sharded (the sharded WithK path goes through the heap merge).
func TestWithKMatchesTopK(t *testing.T) {
	sets := autoGridCorpus(107, 24)
	queries := autoGridCorpus(108, 5)
	for _, shards := range []int{1, 3} {
		eng, err := NewEngine(sets, Config{Similarity: Jaccard, Delta: 0.5, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			full, err := eng.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, len(full), len(full) + 3} {
				if k < 1 {
					continue
				}
				want := full
				if k < len(want) {
					want = want[:k]
				}
				byOpt, err := eng.Search(q, WithK(k))
				if err != nil {
					t.Fatal(err)
				}
				byTopK, err := eng.SearchTopK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("shards=%d query=%d k=%d", shards, qi, k)
				matchesEqual(t, label+" WithK", byOpt, want)
				matchesEqual(t, label+" SearchTopK", byTopK, want)
			}
		}
	}
}

// TestFilterTogglesNeverChangeResults pins the exactness guarantee under
// the per-query filter toggles: disabling any combination of filters (and
// the reduction) must return identical matches.
func TestFilterTogglesNeverChangeResults(t *testing.T) {
	sets := autoGridCorpus(109, 24)
	queries := autoGridCorpus(110, 5)
	for _, shards := range []int{1, 3} {
		eng, err := NewEngine(sets, Config{Similarity: Jaccard, Delta: 0.5, Alpha: 0.4, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		toggleSets := [][]QueryOption{
			{WithNNFilter(false)},
			{WithCheckFilter(false), WithNNFilter(false)},
			{WithReduction(false)},
			{WithCheckFilter(false), WithNNFilter(false), WithReduction(false)},
		}
		for qi, q := range queries {
			want, err := eng.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			for ti, opts := range toggleSets {
				got, err := eng.Search(q, opts...)
				if err != nil {
					t.Fatal(err)
				}
				matchesEqual(t, fmt.Sprintf("shards=%d query=%d toggles=%d", shards, qi, ti), got, want)
			}
		}
	}
}

// TestExplainFunnelConsistency pins the per-query capture arithmetic on
// search and discovery, serial and sharded: candidates split exactly
// across the check filter, survivors across the NN filter, and signatured
// passes verify exactly their NN survivors.
func TestExplainFunnelConsistency(t *testing.T) {
	sets := autoGridCorpus(111, 24)
	queries := autoGridCorpus(112, 4)
	check := func(t *testing.T, label string, ex *Explain) {
		t.Helper()
		if ex.Passes == 0 {
			t.Fatalf("%s: no passes recorded", label)
		}
		if ex.Candidates != ex.AfterCheck+ex.CheckPruned {
			t.Fatalf("%s: candidates %d != after-check %d + check-pruned %d",
				label, ex.Candidates, ex.AfterCheck, ex.CheckPruned)
		}
		if ex.AfterCheck != ex.AfterNN+ex.NNPruned {
			t.Fatalf("%s: after-check %d != after-nn %d + nn-pruned %d",
				label, ex.AfterCheck, ex.AfterNN, ex.NNPruned)
		}
		if ex.FullScans == 0 && ex.Verified != ex.AfterNN {
			t.Fatalf("%s: verified %d != after-nn %d on signatured passes",
				label, ex.Verified, ex.AfterNN)
		}
		if ex.Scheme == "" && ex.Passes > ex.FullScans {
			t.Fatalf("%s: signatured passes but no scheme name (%+v)", label, ex)
		}
	}
	for _, shards := range []int{1, 2, 7} {
		for _, scheme := range []Scheme{SchemeDichotomy, SchemeAuto} {
			eng, err := NewEngine(sets, Config{Similarity: Jaccard, Delta: 0.6, Alpha: 0.5, Shards: shards, Scheme: scheme, Concurrency: 2})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				res, err := eng.Explain(q)
				if err != nil {
					t.Fatal(err)
				}
				if res.Explain == nil {
					t.Fatal("Explain returned nil metadata")
				}
				label := fmt.Sprintf("shards=%d scheme=%v query=%d", shards, scheme, qi)
				check(t, label, res.Explain)
				if want := int64(eng.Shards()); res.Explain.Passes != want {
					t.Fatalf("%s: %d passes, want one per shard (%d)", label, res.Explain.Passes, want)
				}
				plain, err := eng.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				matchesEqual(t, label, res.Matches, plain)
			}

			var dex Explain
			if _, err := eng.DiscoverContext(context.Background(), WithExplain(&dex)); err != nil {
				t.Fatal(err)
			}
			check(t, fmt.Sprintf("shards=%d scheme=%v discover", shards, scheme), &dex)
			if want := int64(len(sets) * eng.Shards()); dex.Passes != want {
				t.Fatalf("shards=%d scheme=%v discover: %d passes, want refs×shards (%d)",
					shards, scheme, dex.Passes, want)
			}
		}
	}
}

// TestQueryOptionValidation pins the option error surface.
func TestQueryOptionValidation(t *testing.T) {
	eng, err := NewEngine(autoGridCorpus(113, 8), Config{Similarity: Jaccard, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	q := Set{Elements: []string{"tok1 tok2"}}
	cases := map[string]QueryOption{
		"k=0":          WithK(0),
		"delta=0":      WithDelta(0),
		"delta=1.5":    WithDelta(1.5),
		"scheme=99":    WithScheme(Scheme(99)),
		"explain(nil)": WithExplain(nil),
	}
	for name, opt := range cases {
		if _, err := eng.Search(q, opt); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	// Later options win: WithDelta(0.9) after WithDelta(0.2) behaves as 0.9.
	strict, err := eng.Search(q, WithDelta(0.2), WithDelta(0.9))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Search(q, WithDelta(0.9))
	if err != nil {
		t.Fatal(err)
	}
	matchesEqual(t, "later option wins", strict, want)
}

// TestSchemeStringRoundTrip pins Scheme.String and ParseScheme as exact
// inverses over every scheme.
func TestSchemeStringRoundTrip(t *testing.T) {
	for _, s := range []Scheme{SchemeDichotomy, SchemeSkyline, SchemeWeighted, SchemeCombUnweighted, SchemeAuto} {
		got, err := ParseScheme(s.String())
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %q -> %v", s, s.String(), got)
		}
	}
	if _, err := ParseScheme("Scheme(42)"); err == nil {
		t.Fatal("ParseScheme accepted an out-of-range formatting")
	}
}
