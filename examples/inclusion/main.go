// Approximate inclusion dependency: given a reference column, find all
// columns that approximately contain it (the paper's third application,
// §8.1) — the "is this column joinable with that one?" question. Containment
// tolerates dirty values: a column still contains the reference when a few
// values differ by a word.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"silkmoth"
	"silkmoth/internal/datagen"
)

func main() {
	n := flag.Int("n", 3000, "number of columns")
	numRefs := flag.Int("refs", 50, "number of reference columns to search")
	delta := flag.Float64("delta", 0.75, "containment threshold")
	alpha := flag.Float64("alpha", 0.5, "value similarity threshold")
	flag.Parse()

	raws := datagen.WebTableColumns(datagen.ColumnConfig{NumColumns: *n, Seed: 99})
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	fmt.Printf("corpus: %d columns\n", len(sets))

	eng, err := silkmoth.NewEngine(sets, silkmoth.Config{
		Metric:     silkmoth.SetContainment,
		Similarity: silkmoth.Jaccard,
		Delta:      *delta,
		Alpha:      *alpha,
	})
	if err != nil {
		log.Fatal(err)
	}

	refRaws := datagen.PickReferences(raws, *numRefs, 4)
	start := time.Now()
	found := 0
	for _, r := range refRaws {
		ms, err := eng.Search(silkmoth.Set{Name: r.Name, Elements: r.Elements})
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range ms {
			if m.Name == r.Name {
				continue // a column trivially contains itself
			}
			found++
			if found <= 5 {
				fmt.Printf("  %s ⊑ %s (containment %.3f)\n", r.Name, m.Name, m.Relatedness)
			}
		}
	}
	fmt.Printf("searched %d references in %v: %d approximate inclusion dependencies\n",
		len(refRaws), time.Since(start).Round(time.Millisecond), found)

	// Sanity: planted supercolumns should dominate the findings.
	st := eng.Stats()
	fmt.Printf("funnel: %d candidates -> %d after check -> %d after NN -> %d verified\n",
		st.Candidates, st.AfterCheck, st.AfterNN, st.Verified)
}
