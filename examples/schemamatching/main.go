// Schema matching: discover web tables with matching schemas (the paper's
// second application, §8.1). Each table's schema is a set whose elements are
// attributes, each attribute a bag of its values; two schemas match when the
// maximum matching alignment of their attributes clears δ under Jaccard.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"silkmoth"
	"silkmoth/internal/datagen"
)

func main() {
	n := flag.Int("n", 3000, "number of web tables")
	delta := flag.Float64("delta", 0.75, "relatedness threshold")
	flag.Parse()

	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: *n, Seed: 7})
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	fmt.Printf("corpus: %d web-table schemas\n", len(sets))

	eng, err := silkmoth.NewEngine(sets, silkmoth.Config{
		Metric:     silkmoth.SetSimilarity,
		Similarity: silkmoth.Jaccard,
		Delta:      *delta,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	pairs := eng.Discover()
	fmt.Printf("found %d matching schema pairs in %v\n",
		len(pairs), time.Since(start).Round(time.Millisecond))

	show := pairs
	if len(show) > 5 {
		show = show[:5]
	}
	for _, p := range show {
		fmt.Printf("  %.3f  %s ~ %s\n", p.Relatedness, p.RName, p.SName)
	}
	st := eng.Stats()
	fmt.Printf("funnel: %d candidates -> %d after check -> %d after NN -> %d verified\n",
		st.Candidates, st.AfterCheck, st.AfterNN, st.Verified)
}
