// Quickstart: the paper's running example (Tables 1 and 2). A reference
// column of locations is searched against four candidate sets under
// SET-CONTAINMENT with Jaccard element similarity; only S4 is related at
// δ = 0.7, with matching score ≈ 2.229 and containment ≈ 0.743.
package main

import (
	"fmt"
	"log"

	"silkmoth"
)

func main() {
	// The collection S = {S1..S4} of the paper's Table 2, written out
	// with the real tokens (t1 = "77", t2 = "Mass", ..., t12 = "IL").
	collection := []silkmoth.Set{
		{Name: "S1", Elements: []string{
			"Mass Ave St Boston 02115",
			"77 Mass 5th St Boston",
			"77 Mass Ave 5th 02115",
		}},
		{Name: "S2", Elements: []string{
			"77 Boston MA",
			"77 5th St Boston 02115",
			"77 Mass Ave 02115 Seattle",
		}},
		{Name: "S3", Elements: []string{
			"77 Mass Ave 5th Boston MA",
			"Mass Ave Chicago IL",
			"77 Mass Ave St",
		}},
		{Name: "S4", Elements: []string{
			"77 Mass Ave MA",
			"5th St 02115 Seattle WA",
			"77 5th St Boston Seattle",
		}},
	}

	eng, err := silkmoth.NewEngine(collection, silkmoth.Config{
		Metric:     silkmoth.SetContainment,
		Similarity: silkmoth.Jaccard,
		Delta:      0.7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The reference set R = the Location column of Table 1/2.
	reference := silkmoth.Set{Name: "Location", Elements: []string{
		"77 Mass Ave Boston MA",
		"5th St 02115 Seattle WA",
		"77 5th St Chicago IL",
	}}

	// Per-query options ride on any search: WithK truncates to the top k
	// and WithExplain captures this query's own plan — which concrete
	// signature scheme probed the index and what each filter pruned —
	// without touching the engine's cumulative Stats.
	var ex silkmoth.Explain
	matches, err := eng.Search(reference, silkmoth.WithK(2), silkmoth.WithExplain(&ex))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-2 sets related to %q at δ=0.7 (SET-CONTAINMENT, Jaccard):\n", reference.Name)
	for _, m := range matches {
		fmt.Printf("  %-4s containment=%.3f matching-score=%.3f\n",
			m.Name, m.Relatedness, m.MatchingScore)
	}

	fmt.Printf("plan: scheme=%s sig-tokens=%d, funnel %d candidates -> %d after check -> %d after NN -> %d verified (%.2fms)\n",
		ex.Scheme, ex.SigTokens, ex.Candidates, ex.AfterCheck, ex.AfterNN, ex.Verified,
		float64(ex.Elapsed.Microseconds())/1000)

	// A query can also pin the scheme or tighten δ without rebuilding:
	strict, err := eng.Search(reference,
		silkmoth.WithDelta(0.74), silkmoth.WithScheme(silkmoth.SchemeSkyline))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at δ=0.74 (skyline signatures): %d related sets\n", len(strict))
}
