// String matching: discover near-duplicate publication titles in a
// DBLP-like corpus (the paper's first application, §8.1). Each title is a
// set of its words; words match under edit similarity with a high α, so
// "Databse Systms Concpts" still pairs with "Database Systems Concepts".
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"silkmoth"
	"silkmoth/internal/datagen"
)

func main() {
	n := flag.Int("n", 2000, "number of titles")
	delta := flag.Float64("delta", 0.8, "relatedness threshold")
	alpha := flag.Float64("alpha", 0.8, "edit similarity threshold")
	flag.Parse()

	raws := datagen.DBLP(datagen.DBLPConfig{NumTitles: *n, Seed: 42})
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	fmt.Printf("corpus: %d titles (with planted near-duplicates)\n", len(sets))

	eng, err := silkmoth.NewEngine(sets, silkmoth.Config{
		Metric:     silkmoth.SetSimilarity,
		Similarity: silkmoth.Eds,
		Delta:      *delta,
		Alpha:      *alpha,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	pairs := eng.Discover()
	elapsed := time.Since(start)

	fmt.Printf("found %d related title pairs in %v\n", len(pairs), elapsed.Round(time.Millisecond))
	show := pairs
	if len(show) > 5 {
		show = show[:5]
	}
	for _, p := range show {
		fmt.Printf("  %.3f  %s ~ %s\n", p.Relatedness, p.RName, p.SName)
	}
	st := eng.Stats()
	naive := int64(len(sets)) * int64(len(sets)-1) / 2
	fmt.Printf("verified %d matchings instead of %d naive comparisons (%.1fx fewer)\n",
		st.Verified, naive, float64(naive)/float64(max64(st.Verified, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
