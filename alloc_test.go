package silkmoth

import (
	"fmt"
	"math/rand"
	"testing"

	"silkmoth/internal/raceflag"
)

// allocCorpus builds a corpus large enough that queries touch many
// candidates: a per-candidate or per-pair allocation regression multiplies
// into hundreds of objects per query and trips the budgets immediately,
// while the fixed per-query costs (tokenizing the query against the shared
// dictionary, assembling the public result slice) stay constant.
func allocCorpus(n int) []Set {
	rng := rand.New(rand.NewSource(4242))
	sets := make([]Set, n)
	for i := range sets {
		ne := 3 + rng.Intn(5)
		elems := make([]string, ne)
		for j := range elems {
			k := 2 + rng.Intn(4)
			s := ""
			for w := 0; w < k; w++ {
				if w > 0 {
					s += " "
				}
				s += fmt.Sprintf("word%03d", rng.Intn(120))
			}
			elems[j] = s
		}
		sets[i] = Set{Name: fmt.Sprintf("S%d", i), Elements: elems}
	}
	return sets
}

// Steady-state allocation budgets per public query. These are deliberately
// fixed absolute numbers, not ratios: the hot path owns reusable scratch
// for everything proportional to collection size, candidate count, or pair
// count, so what remains is query tokenization plus result assembly — a
// constant for a fixed query. If a budget trips, a per-candidate or
// per-pair allocation crept back into the pipeline; find it with
// `go test -bench BenchmarkPipeline -benchmem ./internal/core`.
// The single-query budgets dropped from 100/110 to low double digits when
// query tokenization moved onto pooled scratch (dataset.QueryScratch): a
// serial Search steady-states at 6 objects, so the budget is the measured
// cost plus headroom for runtime noise, not a round hundred.
const (
	searchAllocBudget   = 12
	topKAllocBudget     = 16
	discoverAllocBudget = 400 // whole self-join (300 passes), not one query
)

func measureAllocs(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	f() // warm scratch arenas and pools
	f()
	got := testing.AllocsPerRun(50, f)
	if got > budget {
		t.Errorf("%s allocates %.1f objects steady-state, budget %.0f", name, got, budget)
	}
	t.Logf("%s: %.1f allocs (budget %.0f)", name, got, budget)
}

// TestQueryAllocationBudgets pins steady-state allocations of the public
// Search, SearchTopK, and Discover paths on serial and sharded engines, so
// the pipeline's zero-allocation property cannot silently regress.
func TestQueryAllocationBudgets(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; budgets hold only in plain builds")
	}
	sets := allocCorpus(300)
	ref := sets[7]
	for _, shards := range []int{1, 3} {
		eng, err := NewEngine(sets, Config{
			Similarity:  Jaccard,
			Delta:       0.5,
			Alpha:       0.3,
			Shards:      shards,
			StageSample: 1, // stage timing on every pass — must ride for free
		})
		if err != nil {
			t.Fatal(err)
		}
		// Sharded paths pay a fixed per-query fan-out cost (one goroutine
		// and result rewrite per shard), and discovery pays it per pass.
		extra, discoverExtra := 0.0, 0.0
		if shards > 1 {
			extra = 30
			discoverExtra = 800
		}
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			measureAllocs(t, "Search", searchAllocBudget+extra, func() {
				if _, err := eng.Search(ref); err != nil {
					t.Fatal(err)
				}
			})
			measureAllocs(t, "SearchTopK", topKAllocBudget+extra, func() {
				if _, err := eng.SearchTopK(ref, 5); err != nil {
					t.Fatal(err)
				}
			})
			measureAllocs(t, "Discover", discoverAllocBudget+discoverExtra, func() {
				eng.Discover()
			})
		})
	}
}
