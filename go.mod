module silkmoth

go 1.22
