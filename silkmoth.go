// Package silkmoth discovers related sets under maximum matching
// constraints, implementing Deng, Kim, Madden & Stonebraker, "SILKMOTH: An
// Efficient Method for Finding Related Sets with Maximum Matching
// Constraints" (VLDB 2017).
//
// Two sets are related when the score of the maximum-weight bipartite
// matching between their elements — weighted by an element similarity
// function — clears a threshold. Unlike exact set overlap, this tolerates
// dirty data: "77 Mass Ave Boston MA" still aligns with "77 Massachusetts
// Avenue Boston MA". SilkMoth finds all related pairs exactly (identical
// output to brute force) but prunes the vast majority of comparisons with
// valid signatures, a check filter, a nearest-neighbor filter, and a
// triangle-inequality reduction of the final matching computation.
//
// # Quick start
//
//	sets := []silkmoth.Set{
//		{Name: "addresses", Elements: []string{"77 Mass Ave Boston MA", "5th St Seattle WA"}},
//		{Name: "locations", Elements: []string{"77 Massachusetts Ave Boston MA", "Fifth St Seattle WA"}},
//	}
//	eng, err := silkmoth.NewEngine(sets, silkmoth.Config{
//		Metric:     silkmoth.SetSimilarity,
//		Similarity: silkmoth.Jaccard,
//		Delta:      0.7,
//	})
//	if err != nil { ... }
//	pairs := eng.Discover() // all related pairs within sets
//
// Search mode finds everything related to one reference set:
//
//	matches, err := eng.Search(silkmoth.Set{Elements: []string{...}})
//
// # Metrics, similarities, thresholds
//
// Metric selects SET-SIMILARITY (approximate set equality) or
// SET-CONTAINMENT (approximate subset, |R| ≤ |S|). Similarity selects the
// element-level φ: Jaccard, Dice, or Cosine over whitespace words, or the
// edit similarities Eds and NEds over characters. Delta ∈ (0, 1] is the
// relatedness threshold; Alpha ∈ [0, 1) optionally zeroes element
// similarities below it. Engines additionally support top-k search,
// collection persistence, and direct pairwise Compare.
//
// # Per-query options and explainable results
//
// Config freezes an engine's defaults; QueryOptions override them one
// query at a time. Every query method takes a trailing option list:
//
//	var ex silkmoth.Explain
//	matches, err := eng.Search(ref,
//		silkmoth.WithK(10),                        // top-k truncation
//		silkmoth.WithScheme(silkmoth.SchemeSkyline), // pin the signature scheme
//		silkmoth.WithDelta(0.9),                   // per-query threshold
//		silkmoth.WithExplain(&ex),                 // capture the plan
//	)
//
// Option-less calls are bit-identical to the engine's configured behavior.
// WithScheme never changes results (schemes only decide how the index is
// probed — pair it with WithExplain to audit SchemeAuto's choices), while
// WithDelta returns exactly what an engine built with that δ would.
// WithCheckFilter, WithNNFilter, and WithReduction stress individual
// pipeline stages; disabling them never changes matches, only cost.
//
// Explain (or the Engine.Explain method, which returns a Result) reports
// the executed plan: the concrete scheme that probed the index, the
// per-stage pruning funnel — signature tokens, candidates, check-filter
// and NN-filter survivors, verifications — and wall time. On a sharded
// engine the capture merges all shards (one pass each). SearchBatchQueries
// is the per-item batch form: each BatchQuery carries its own options, so
// a mixed workload can pin schemes and capture explains item by item.
//
// # Mutation
//
// Collections are fully mutable: Add indexes more sets incrementally,
// Delete tombstones a set out of every future query (stable ids, never
// reused), and Update atomically replaces one set under a fresh id.
// Deleted storage is reclaimed lazily — postings rebuilt, dead elements
// dropped, unused dictionary entries recycled — once the tombstone ratio
// reaches Config.CompactionThreshold (or on an explicit Compact call).
// Mutations never change what queries return: a mutated engine answers
// exactly like one built fresh from its surviving sets, and SaveCollection
// persists that compacted form.
//
// # Concurrency and serving
//
// Engines are safe for concurrent use: parallel queries do not serialize
// on a shared lock, mutations (Add, Delete, Update, Compact) are safely
// interleaved with in-flight queries, and
// Config.Concurrency parallelizes Discover's reference passes and shards
// each query's candidate verification across a worker pool. The
// context-aware variants (SearchContext, SearchTopKContext,
// DiscoverContext, DiscoverAgainstContext) abort cleanly on cancellation.
//
// Config.Shards > 1 additionally hash-partitions the collection into
// independently indexed shards: index builds parallelize across shards and
// every query fans out and merges by scatter-gather, with results
// guaranteed identical to the unsharded engine. SearchBatch answers many
// searches in one call, amortizing tokenization and fanning the batch
// across shards and workers.
//
// To serve an engine over HTTP/JSON — search, top-k, discovery, compare,
// explain, and incremental indexing behind a bounded worker pool with an
// LRU result cache and Prometheus-style metrics — run the cmd/silkmothd
// daemon (built on the internal server package). Its /v1/explain endpoint
// and per-request scheme/delta/explain fields expose the query options on
// the wire.
package silkmoth

import (
	"fmt"

	"silkmoth/internal/core"
	"silkmoth/internal/signature"
)

// Set is a named collection of raw string elements. How elements are
// tokenized depends on the engine's Similarity: whitespace words for
// Jaccard, q-grams/q-chunks for the edit similarities.
type Set struct {
	Name     string
	Elements []string
}

// Metric selects the set relatedness metric.
type Metric int

const (
	// SetSimilarity relates R and S when
	// |R ∩̃ S| / (|R|+|S|-|R ∩̃ S|) ≥ Delta.
	SetSimilarity Metric = iota
	// SetContainment relates R and S (|R| ≤ |S|) when
	// |R ∩̃ S| / |R| ≥ Delta.
	SetContainment
)

func (m Metric) String() string {
	switch m {
	case SetSimilarity:
		return "set-similarity"
	case SetContainment:
		return "set-containment"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Similarity selects the element similarity function φ.
type Similarity int

const (
	// Jaccard treats each element as a set of whitespace-delimited words.
	Jaccard Similarity = iota
	// Eds is the edit similarity 1 - 2·LD/(|x|+|y|+LD); its dual distance
	// is a metric, enabling the verification reduction.
	Eds
	// NEds is the normalized edit similarity 1 - LD/max(|x|,|y|).
	NEds
	// Dice treats elements as sets of whitespace words compared with the
	// Dice coefficient 2|∩|/(|a|+|b|).
	Dice
	// Cosine treats elements as sets of whitespace words compared with
	// the set cosine similarity |∩|/√(|a||b|).
	Cosine
)

func (s Similarity) String() string {
	switch s {
	case Jaccard:
		return "jaccard"
	case Eds:
		return "eds"
	case NEds:
		return "neds"
	case Dice:
		return "dice"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Similarity(%d)", int(s))
	}
}

// Scheme selects the signature scheme used to prune the search space.
type Scheme int

const (
	// SchemeDichotomy (default) is the paper's best performer: the
	// cost/value greedy with sim-thresh saturation (§6.4).
	SchemeDichotomy Scheme = iota
	// SchemeSkyline post-cuts a weighted signature by the similarity
	// threshold (§6.3); strongest at small α.
	SchemeSkyline
	// SchemeWeighted is the pure weighted scheme of §4.2.
	SchemeWeighted
	// SchemeCombUnweighted is the FastJoin-style baseline of §6.2.
	SchemeCombUnweighted
	// SchemeAuto picks among Weighted, Skyline, and Dichotomy per query
	// by the paper's §4.3 cost model: the engine generates the candidate
	// signatures and probes with the one whose posting-list cost is
	// lowest. Results are always identical to any fixed scheme — schemes
	// only decide how much of the index is probed — so Auto trades a
	// little generation work for the cheapest probe each query.
	// Stats.SchemeWeighted/SchemeSkyline/SchemeDichotomy expose the
	// per-query choices.
	SchemeAuto
)

func (s Scheme) String() string {
	switch s {
	case SchemeDichotomy:
		return "dichotomy"
	case SchemeSkyline:
		return "skyline"
	case SchemeWeighted:
		return "weighted"
	case SchemeCombUnweighted:
		return "combunweighted"
	case SchemeAuto:
		return "auto"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme maps a scheme's String form ("dichotomy", "skyline",
// "weighted", "combunweighted", "auto") back to the constant — the inverse
// serving layers and CLIs use for flag and request parsing.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range []Scheme{SchemeDichotomy, SchemeSkyline, SchemeWeighted, SchemeCombUnweighted, SchemeAuto} {
		if name == s.String() {
			return s, nil
		}
	}
	return 0, fmt.Errorf("silkmoth: unknown scheme %q", name)
}

// kind lowers the public scheme to the signature package's kind.
func (s Scheme) kind() (signature.Kind, error) {
	switch s {
	case SchemeDichotomy:
		return signature.Dichotomy, nil
	case SchemeSkyline:
		return signature.Skyline, nil
	case SchemeWeighted:
		return signature.Weighted, nil
	case SchemeCombUnweighted:
		return signature.CombUnweighted, nil
	case SchemeAuto:
		return signature.Auto, nil
	default:
		return 0, fmt.Errorf("silkmoth: unknown scheme %d", int(s))
	}
}

// Config configures an Engine. The zero value is not valid: Delta must be
// positive. Filters and the verification reduction are on by default and
// can be disabled for experimentation.
type Config struct {
	// Metric is the relatedness metric; default SetSimilarity.
	Metric Metric
	// Similarity is the element similarity; default Jaccard.
	Similarity Similarity
	// Delta ∈ (0, 1] is the relatedness threshold δ.
	Delta float64
	// Alpha ∈ [0, 1) is the element similarity threshold α; element
	// similarities below Alpha count as zero. Optional.
	Alpha float64
	// Q is the gram length for edit similarities; 0 picks the largest
	// sound value automatically.
	Q int
	// Scheme is the signature scheme; default SchemeDichotomy.
	Scheme Scheme
	// DisableCheckFilter turns off the check filter (§5.1).
	DisableCheckFilter bool
	// DisableNNFilter turns off the nearest-neighbor filter (§5.2).
	DisableNNFilter bool
	// DisableReduction turns off reduction-based verification (§5.3).
	// The reduction only applies at Alpha = 0 under Jaccard or Eds.
	DisableReduction bool
	// Concurrency bounds parallel search passes in Discover; values < 1
	// mean single-threaded.
	Concurrency int
	// Shards hash-partitions the collection into this many independently
	// indexed shards whose indexes build in parallel and whose queries run
	// by scatter-gather, with results provably identical to the unsharded
	// engine (same matches, same scores, same order). Values < 2 mean a
	// single unsharded engine.
	Shards int
	// StageSample controls per-stage wall timing of search passes: one in
	// every StageSample passes records its signature/collect/refine/verify
	// durations into the engine's stage histograms (StageLatencies) and
	// cumulative counters (Stats). 0 means the default sampling interval
	// (one in 16), 1 times every pass, negative disables sampling. Queries
	// with an explain capture are always timed regardless. Timing is
	// allocation-free either way.
	StageSample int
	// DataDir enables durability: a directory holding a binary snapshot
	// of the engine (collection, dictionary, postings) plus a write-ahead
	// log of every Add/Delete/Update appended and fsync'd before the
	// mutation is acknowledged. NewEngine with a DataDir that already
	// holds state recovers from it — latest snapshot loaded with zero
	// re-tokenization, log replayed over it (tolerating a torn tail from
	// a crash mid-append) — and ignores its sets argument; an empty
	// DataDir bootstraps from sets and writes the initial snapshot.
	// Engine.Snapshot() rotates the pair; Engine.Close() releases the log
	// handle. Empty disables durability (a heap-only engine).
	DataDir string
	// CompactionThreshold controls when Delete and Update trigger
	// automatic compaction: once the fraction of tombstoned sets still
	// occupying the inverted index reaches it, posting lists are rebuilt
	// over the live sets, deleted element storage is dropped, and
	// dictionary entries no live set references are reclaimed for reuse.
	// 0 means the default (DefaultCompactionThreshold); negative disables
	// automatic compaction, leaving reclamation to explicit Compact calls.
	// Results are identical before and after compaction either way.
	CompactionThreshold float64
	// CompressedPostings stores posting lists as adaptive compressed
	// containers (sorted array / delta-packed blocks / bitmap, whichever is
	// smallest per list) instead of materialized slices. Queries decode a
	// list only when a probe first touches it, holding hot decodes in a
	// bounded LRU, so the index costs a fraction of the heap for identical
	// results. With DataDir set, recovery from a container-format snapshot
	// becomes zero-copy: the file is memory-mapped and posting bytes stay
	// on disk until probed.
	CompressedPostings bool
	// PostingCacheBytes bounds the compressed index's LRU of decoded hot
	// posting lists, in bytes; 0 means the default (64 MiB). Ignored
	// without CompressedPostings.
	PostingCacheBytes int64
}

// DefaultCompactionThreshold is the tombstone ratio at which engines
// compact automatically when Config.CompactionThreshold is zero.
const DefaultCompactionThreshold = 0.25

func (c Config) coreOptions() (core.Options, error) {
	var metric core.Metric
	switch c.Metric {
	case SetSimilarity:
		metric = core.SetSimilarity
	case SetContainment:
		metric = core.SetContainment
	default:
		return core.Options{}, fmt.Errorf("silkmoth: unknown metric %d", int(c.Metric))
	}
	var simKind core.SimKind
	switch c.Similarity {
	case Jaccard:
		simKind = core.Jaccard
	case Eds:
		simKind = core.Eds
	case NEds:
		simKind = core.NEds
	case Dice:
		simKind = core.Dice
	case Cosine:
		simKind = core.Cosine
	default:
		return core.Options{}, fmt.Errorf("silkmoth: unknown similarity %d", int(c.Similarity))
	}
	scheme, err := c.Scheme.kind()
	if err != nil {
		return core.Options{}, err
	}
	compact := c.CompactionThreshold
	if compact == 0 {
		compact = DefaultCompactionThreshold
	}
	if compact < 0 {
		compact = 0 // core: <= 0 disables automatic compaction
	}
	return core.Options{
		Metric:              metric,
		Sim:                 simKind,
		Delta:               c.Delta,
		Alpha:               c.Alpha,
		Q:                   c.Q,
		Scheme:              scheme,
		CheckFilter:         !c.DisableCheckFilter,
		NNFilter:            !c.DisableNNFilter,
		Reduction:           !c.DisableReduction,
		Concurrency:         c.Concurrency,
		StageSample:         c.StageSample,
		CompactionThreshold: compact,
		CompressPostings:    c.CompressedPostings,
		PostingCacheBytes:   c.PostingCacheBytes,
	}, nil
}

// Match is one search result.
type Match struct {
	// Index locates the related set in the engine's collection.
	Index int
	// Name is the related set's name.
	Name string
	// Relatedness is the metric value, ≥ Delta.
	Relatedness float64
	// MatchingScore is the underlying maximum matching score |R ∩̃ S|.
	MatchingScore float64
}

// Pair is one discovery result.
type Pair struct {
	R, S          int
	RName, SName  string
	Relatedness   float64
	MatchingScore float64
}

// Stats reports the per-stage pruning funnel of an engine's work so far —
// signature generation through exact verification — plus the collection's
// mutation lifecycle counters.
type Stats struct {
	// SearchPasses is the number of reference sets processed.
	SearchPasses int64
	// FullScans counts passes that compared the reference against every
	// set because no valid signature existed (edit similarity at low α).
	FullScans int64
	// SigTokens is the total number of signature tokens generated across
	// passes — the index probe volume the scheme selection minimizes.
	SigTokens int64
	// Candidates counts sets matched by signatures before refinement.
	Candidates int64
	// AfterCheck counts candidates surviving the check filter;
	// CheckPruned counts the ones it rejected.
	AfterCheck  int64
	CheckPruned int64
	// AfterNN counts candidates surviving the nearest-neighbor filter;
	// NNPruned counts the refinement's rejections.
	AfterNN  int64
	NNPruned int64
	// Verified counts maximum-matching computations performed.
	Verified int64
	// SchemeWeighted, SchemeSkyline, SchemeDichotomy, and
	// SchemeCombUnweighted count passes by the concrete signature scheme
	// that probed the index. Under Config.Scheme = SchemeAuto they expose
	// the per-query cost-based selection; under a fixed scheme exactly
	// one of them grows.
	SchemeWeighted       int64
	SchemeSkyline        int64
	SchemeDichotomy      int64
	SchemeCombUnweighted int64
	// TimedPasses counts the search passes whose stages were wall-timed
	// (sampled per Config.StageSample, plus every explained query); Stages
	// holds those passes' summed per-stage durations. Divide by
	// TimedPasses for a mean per-pass stage profile.
	TimedPasses int64
	Stages      StageTimes
	// Stragglers counts sharded scatters whose slowest shard took more
	// than twice the median shard's time — the scatter-gather tail-latency
	// signal. Always zero on an unsharded engine.
	Stragglers int64
	// Live is the number of live (non-deleted) sets.
	Live int
	// Tombstones is the number of deleted sets whose postings are still
	// in the inverted index (zero right after a compaction).
	Tombstones int
	// Compactions counts compaction passes run (per shard on a sharded
	// engine).
	Compactions int64
	// Snapshots counts durable snapshots written since the engine opened
	// (including the bootstrap snapshot). Zero on a heap-only engine.
	Snapshots int64
	// WALRecords counts mutation records this engine appended (and
	// fsync'd) to its write-ahead log. Zero on a heap-only engine.
	WALRecords int64
	// WALReplayed is the number of log records replayed during startup
	// recovery.
	WALReplayed int
	// RecoveredSnapshot reports that the engine's state was loaded from a
	// durable snapshot at startup rather than built from scratch.
	RecoveredSnapshot bool
	// WALTornTail reports that startup replay stopped at an incomplete or
	// checksum-failing final record — the expected shape after a crash
	// mid-append; the torn tail was truncated away.
	WALTornTail bool
	// CompressedPostings reports whether the index stores posting lists as
	// compressed containers (Config.CompressedPostings, or a zero-copy
	// snapshot load).
	CompressedPostings bool
	// Postings is the logical posting count across the index's lists
	// (summed across shards).
	Postings int
	// PostingHeapBytes approximates the materialized posting storage held
	// outside the decode cache: all lists on an uncompressed engine, only
	// post-load appends on a compressed one.
	PostingHeapBytes int64
	// PostingEncodedBytes is the compressed container storage backing the
	// index (zero on an uncompressed engine). The compression ratio is
	// Postings*8 / PostingEncodedBytes.
	PostingEncodedBytes int64
	// PostingResidentBytes is the decode cache's current holding of hot
	// materialized lists.
	PostingResidentBytes int64
	// PostingCacheHits / PostingCacheMisses count decode-cache probes of
	// compressed lists; PostingDecodeErrors counts container decode
	// failures (non-zero only with a corrupted snapshot).
	PostingCacheHits    int64
	PostingCacheMisses  int64
	PostingDecodeErrors int64
	// SnapshotMapped reports that the engine's containers alias a
	// memory-mapped snapshot (zero-copy load, postings paged from disk).
	SnapshotMapped bool
}
