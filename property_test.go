package silkmoth

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// The public-API exactness property: Discover's pairs are exactly the pairs
// whose pairwise Compare clears Delta — no more (soundness of verification)
// and no fewer (no false negatives from signatures or filters).
func TestDiscoverAgreesWithPairwiseCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	mkSet := func(name string) Set {
		n := rng.Intn(3) + 1
		elems := make([]string, n)
		for i := range elems {
			k := rng.Intn(4) + 1
			s := ""
			for j := 0; j < k; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("w%d", rng.Intn(14))
			}
			elems[i] = s
		}
		return Set{Name: name, Elements: elems}
	}

	for trial := 0; trial < 10; trial++ {
		sets := make([]Set, 16)
		for i := range sets {
			sets[i] = mkSet(fmt.Sprintf("S%d", i))
		}
		for _, simFn := range []Similarity{Jaccard, Dice, Cosine} {
			for _, metric := range []Metric{SetSimilarity, SetContainment} {
				for _, delta := range []float64{0.4, 0.7} {
					cfg := Config{Metric: metric, Similarity: simFn, Delta: delta}
					eng, err := NewEngine(sets, cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := make(map[[2]int]bool)
					for _, p := range eng.Discover() {
						got[[2]int{p.R, p.S}] = true
					}
					for r := 0; r < len(sets); r++ {
						for s := 0; s < len(sets); s++ {
							if r == s {
								continue
							}
							if metric == SetSimilarity && s < r {
								continue // unordered pairs reported once
							}
							rel, err := Compare(sets[r], sets[s], cfg)
							if err != nil {
								t.Fatal(err)
							}
							want := rel >= delta-1e-9
							if metric == SetContainment &&
								len(sets[r].Elements) > len(sets[s].Elements) {
								want = false // Definition 2: |R| ≤ |S|
							}
							if got[[2]int{r, s}] != want {
								t.Fatalf("trial %d %v %v δ=%v: pair (%d,%d) Compare=%v, Discover=%v",
									trial, simFn, metric, delta, r, s, rel, got[[2]int{r, s}])
							}
						}
					}
				}
			}
		}
	}
}

// randomCorpus builds a deterministic random workload of word sets with
// enough token overlap that deletes and updates land on related sets.
func randomCorpus(rng *rand.Rand, n int) []Set {
	sets := make([]Set, n)
	for i := range sets {
		elems := make([]string, rng.Intn(3)+1)
		for j := range elems {
			k := rng.Intn(4) + 1
			s := ""
			for w := 0; w < k; w++ {
				if w > 0 {
					s += " "
				}
				s += fmt.Sprintf("w%d", rng.Intn(18))
			}
			elems[j] = s
		}
		sets[i] = Set{Name: fmt.Sprintf("S%d", i), Elements: elems}
	}
	return sets
}

// matchKey is the engine-independent identity of one match: name, score,
// and relatedness. Indices differ between a mutated engine (tombstoned
// holes) and a fresh rebuild, names do not.
type matchKey struct {
	name        string
	relatedness float64
	score       float64
}

func matchKeys(ms []Match) []matchKey {
	out := make([]matchKey, len(ms))
	for i, m := range ms {
		out[i] = matchKey{m.Name, m.Relatedness, m.MatchingScore}
	}
	return out
}

// The public-API metamorphic mutation property: an engine mutated through
// Delete and Update must answer every query bit-identically (scores and
// order included) to an engine built fresh from only the surviving sets —
// tombstoned, compacted, and after a save/load round trip, unsharded and
// sharded alike. Matches are compared by (name, relatedness, score): ids
// differ across the engines by construction, but the canonical order is
// index-monotone, so positional comparison stays exact.
func TestMutatedEngineMatchesFreshRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(987654))
	for _, shards := range []int{0, 3} {
		for _, metric := range []Metric{SetSimilarity, SetContainment} {
			for _, simFn := range []Similarity{Jaccard, Eds} {
				sets := randomCorpus(rng, 24)
				cfg := Config{
					Metric:              metric,
					Similarity:          simFn,
					Delta:               0.5,
					Shards:              shards,
					CompactionThreshold: -1, // explicit Compact below
				}
				label := fmt.Sprintf("shards=%d/%v/%v", shards, metric, simFn)

				eng, err := NewEngine(sets, cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Delete every third set; update every fourth to fresh
				// content under a new name.
				var surviving []Set
				for i, s := range sets {
					switch {
					case i%3 == 1:
						if err := eng.Delete(i); err != nil {
							t.Fatalf("%s: delete %d: %v", label, i, err)
						}
					case i%4 == 2:
						v2 := Set{Name: s.Name + "+v2", Elements: sets[(i*5+1)%len(sets)].Elements}
						if _, err := eng.Update(i, v2); err != nil {
							t.Fatalf("%s: update %d: %v", label, i, err)
						}
					default:
						surviving = append(surviving, s)
					}
				}
				// Updates append in application order — ascending original
				// index — so the fresh build lists them after the untouched
				// survivors, mirroring the mutated engine's live-id order.
				for i, s := range sets {
					if i%3 != 1 && i%4 == 2 {
						surviving = append(surviving, Set{Name: s.Name + "+v2", Elements: sets[(i*5+1)%len(sets)].Elements})
					}
				}
				if eng.Len() != len(surviving) {
					t.Fatalf("%s: Len = %d, want %d survivors", label, eng.Len(), len(surviving))
				}

				freshCfg := cfg
				fresh, err := NewEngine(surviving, freshCfg)
				if err != nil {
					t.Fatal(err)
				}

				check := func(stage string, got *Engine) {
					t.Helper()
					wantPairs := fresh.Discover()
					gotPairs := got.Discover()
					if len(gotPairs) != len(wantPairs) {
						t.Fatalf("%s/%s: %d pairs, fresh found %d", label, stage, len(gotPairs), len(wantPairs))
					}
					for i := range wantPairs {
						g, w := gotPairs[i], wantPairs[i]
						if g.RName != w.RName || g.SName != w.SName ||
							g.Relatedness != w.Relatedness || g.MatchingScore != w.MatchingScore {
							t.Fatalf("%s/%s: pair %d = %+v, fresh %+v", label, stage, i, g, w)
						}
					}
					for _, q := range surviving {
						wantMs, err := fresh.Search(q)
						if err != nil {
							t.Fatal(err)
						}
						gotMs, err := got.Search(q)
						if err != nil {
							t.Fatal(err)
						}
						gk, wk := matchKeys(gotMs), matchKeys(wantMs)
						if len(gk) != len(wk) {
							t.Fatalf("%s/%s: query %q: %d matches, fresh %d", label, stage, q.Name, len(gk), len(wk))
						}
						for i := range wk {
							if gk[i] != wk[i] {
								t.Fatalf("%s/%s: query %q match %d = %+v, fresh %+v", label, stage, q.Name, i, gk[i], wk[i])
							}
						}
						gotK, err := got.SearchTopK(q, 2)
						if err != nil {
							t.Fatal(err)
						}
						wantK := wk
						if len(wantK) > 2 {
							wantK = wantK[:2]
						}
						gotKk := matchKeys(gotK)
						if len(gotKk) != len(wantK) {
							t.Fatalf("%s/%s: query %q top-2: %d matches, fresh %d", label, stage, q.Name, len(gotKk), len(wantK))
						}
						for i := range wantK {
							if gotKk[i] != wantK[i] {
								t.Fatalf("%s/%s: query %q top-2 item %d = %+v, fresh %+v", label, stage, q.Name, i, gotKk[i], wantK[i])
							}
						}
					}
				}

				check("tombstoned", eng)
				eng.Compact()
				check("compacted", eng)

				// The compacted mutated engine must survive a save/load
				// round trip: the loaded engine is a fresh build over the
				// survivors.
				var buf bytes.Buffer
				if err := eng.SaveCollection(&buf); err != nil {
					t.Fatalf("%s: save: %v", label, err)
				}
				loaded, err := NewEngineFromSaved(&buf, cfg)
				if err != nil {
					t.Fatalf("%s: load: %v", label, err)
				}
				if loaded.Len() != len(surviving) {
					t.Fatalf("%s: loaded Len = %d, want %d", label, loaded.Len(), len(surviving))
				}
				check("reloaded", loaded)
			}
		}
	}
}
