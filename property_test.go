package silkmoth

import (
	"fmt"
	"math/rand"
	"testing"
)

// The public-API exactness property: Discover's pairs are exactly the pairs
// whose pairwise Compare clears Delta — no more (soundness of verification)
// and no fewer (no false negatives from signatures or filters).
func TestDiscoverAgreesWithPairwiseCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	mkSet := func(name string) Set {
		n := rng.Intn(3) + 1
		elems := make([]string, n)
		for i := range elems {
			k := rng.Intn(4) + 1
			s := ""
			for j := 0; j < k; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("w%d", rng.Intn(14))
			}
			elems[i] = s
		}
		return Set{Name: name, Elements: elems}
	}

	for trial := 0; trial < 10; trial++ {
		sets := make([]Set, 16)
		for i := range sets {
			sets[i] = mkSet(fmt.Sprintf("S%d", i))
		}
		for _, simFn := range []Similarity{Jaccard, Dice, Cosine} {
			for _, metric := range []Metric{SetSimilarity, SetContainment} {
				for _, delta := range []float64{0.4, 0.7} {
					cfg := Config{Metric: metric, Similarity: simFn, Delta: delta}
					eng, err := NewEngine(sets, cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := make(map[[2]int]bool)
					for _, p := range eng.Discover() {
						got[[2]int{p.R, p.S}] = true
					}
					for r := 0; r < len(sets); r++ {
						for s := 0; s < len(sets); s++ {
							if r == s {
								continue
							}
							if metric == SetSimilarity && s < r {
								continue // unordered pairs reported once
							}
							rel, err := Compare(sets[r], sets[s], cfg)
							if err != nil {
								t.Fatal(err)
							}
							want := rel >= delta-1e-9
							if metric == SetContainment &&
								len(sets[r].Elements) > len(sets[s].Elements) {
								want = false // Definition 2: |R| ≤ |S|
							}
							if got[[2]int{r, s}] != want {
								t.Fatalf("trial %d %v %v δ=%v: pair (%d,%d) Compare=%v, Discover=%v",
									trial, simFn, metric, delta, r, s, rel, got[[2]int{r, s}])
							}
						}
					}
				}
			}
		}
	}
}
