package silkmoth

import (
	"errors"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
)

// ErrNotFound reports a Delete or Update aimed at a set id that is out of
// range or already deleted.
var ErrNotFound = errors.New("silkmoth: no such set")

// Delete removes the set with the given id (its index in the engine's
// collection) from every future query. The id is tombstoned, never reused:
// remaining sets keep their indices, Len shrinks by one, and searches,
// top-k, and discovery behave exactly as if the engine had been built
// without the set. Storage — postings, element tokens, and dictionary
// entries used by no surviving set — is reclaimed lazily once the
// tombstone ratio reaches Config.CompactionThreshold (or on an explicit
// Compact call). Delete is safe to call concurrently with queries: it
// takes the engine's write lock, so in-flight queries complete first and
// later ones see the shrunken collection.
func (e *Engine) Delete(id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.sh != nil {
		err = e.sh.Delete(id)
	} else {
		err = e.eng.Delete(id)
	}
	if errors.Is(err, core.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

// Update replaces the set with the given id by a new version in one atomic
// step: the new tokenization is indexed under a fresh id (returned) and the
// old id is tombstoned, all under the engine's write lock, so no query ever
// observes both versions or neither. The old id becomes permanently
// invalid; storage follows Delete's lazy-compaction lifecycle.
func (e *Engine) Update(id int, set Set) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	raw := dataset.RawSet{Name: set.Name, Elements: set.Elements}
	if e.sh != nil {
		newID, err := e.sh.Update(id, raw)
		if errors.Is(err, core.ErrNotFound) {
			return 0, ErrNotFound
		}
		return newID, err
	}
	if !e.eng.Alive(id) {
		return 0, ErrNotFound
	}
	newID := dataset.Append(e.coll, []dataset.RawSet{raw})
	e.eng.AppendSets(newID)
	if err := e.eng.Delete(id); err != nil {
		return 0, err // unreachable: aliveness was just checked
	}
	return newID, nil
}

// Compact forces an immediate compaction regardless of the configured
// threshold: posting lists are rebuilt over the live sets, deleted sets'
// element storage is dropped, and dictionary entries no live set
// references are freed for reuse. Queries return identical results before
// and after. A no-op when nothing has been deleted since the last
// compaction.
func (e *Engine) Compact() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sh != nil {
		e.sh.Compact()
		return
	}
	e.eng.Compact()
}

// Live reports whether the set with the given id exists and has not been
// deleted.
func (e *Engine) Live(id int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sh != nil {
		return e.sh.Alive(id)
	}
	return e.eng.Alive(id)
}
