package silkmoth

import (
	"errors"

	"silkmoth/internal/dataset"
	"silkmoth/internal/wal"
)

// ErrNotFound reports a Delete or Update aimed at a set id that is out of
// range or already deleted.
var ErrNotFound = errors.New("silkmoth: no such set")

// Delete removes the set with the given id (its index in the engine's
// collection) from every future query. The id is tombstoned, never reused:
// remaining sets keep their indices, Len shrinks by one, and searches,
// top-k, and discovery behave exactly as if the engine had been built
// without the set. Storage — postings, element tokens, and dictionary
// entries used by no surviving set — is reclaimed lazily once the
// tombstone ratio reaches Config.CompactionThreshold (or on an explicit
// Compact call). Delete is safe to call concurrently with queries: it
// takes the engine's write lock, so in-flight queries complete first and
// later ones see the shrunken collection.
// On a durable engine (Config.DataDir) the deletion is logged to the WAL
// and fsync'd before the tombstone is applied. The liveness check runs
// first, so failed deletes are never logged.
func (e *Engine) Delete(id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.liveLocked(id) {
		return ErrNotFound
	}
	if err := e.appendWAL(&wal.Record{Op: wal.OpDelete, ID: id}); err != nil {
		return err
	}
	return e.applyDelete(id)
}

// Update replaces the set with the given id by a new version in one atomic
// step: the new tokenization is indexed under a fresh id (returned) and the
// old id is tombstoned, all under the engine's write lock, so no query ever
// observes both versions or neither. The old id becomes permanently
// invalid; storage follows Delete's lazy-compaction lifecycle.
// On a durable engine (Config.DataDir) the replacement is logged to the
// WAL and fsync'd before it is applied, after the liveness check, so only
// updates that will succeed are logged.
func (e *Engine) Update(id int, set Set) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	raw := dataset.RawSet{Name: set.Name, Elements: set.Elements}
	if !e.liveLocked(id) {
		return 0, ErrNotFound
	}
	if err := e.appendWAL(&wal.Record{Op: wal.OpUpdate, ID: id, Sets: []dataset.RawSet{raw}}); err != nil {
		return 0, err
	}
	return e.applyUpdate(id, raw)
}

// Compact forces an immediate compaction regardless of the configured
// threshold: posting lists are rebuilt over the live sets, deleted sets'
// element storage is dropped, and dictionary entries no live set
// references are freed for reuse. Queries return identical results before
// and after. A no-op when nothing has been deleted since the last
// compaction.
func (e *Engine) Compact() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sh != nil {
		e.sh.Compact()
		return
	}
	e.eng.Compact()
}

// Live reports whether the set with the given id exists and has not been
// deleted.
func (e *Engine) Live(id int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sh != nil {
		return e.sh.Alive(id)
	}
	return e.eng.Alive(id)
}
