package silkmoth

import (
	"fmt"
	"math/rand"
	"testing"
)

// autoGridCorpus builds a deterministic corpus with heavy token overlap so
// every scheme generates non-trivial signatures and the filters all fire.
func autoGridCorpus(seed int64, n int) []Set {
	rng := rand.New(rand.NewSource(seed))
	sets := make([]Set, n)
	for i := range sets {
		ne := 1 + rng.Intn(4)
		elems := make([]string, ne)
		for j := range elems {
			k := 1 + rng.Intn(4)
			s := ""
			for w := 0; w < k; w++ {
				if w > 0 {
					s += " "
				}
				s += fmt.Sprintf("tok%d", rng.Intn(18))
			}
			elems[j] = s
		}
		sets[i] = Set{Name: fmt.Sprintf("S%d", i), Elements: elems}
	}
	return sets
}

// TestSchemeAutoMatchesFixedSchemes pins the Auto scheme's exactness
// guarantee on the full Metric × Similarity grid, serial and sharded:
// because signature schemes only decide how the index is probed, Auto must
// return exactly the matches, scores, and order of every fixed valid
// scheme. Any divergence means a scheme produced an invalid signature or
// Auto broke candidate generation.
func TestSchemeAutoMatchesFixedSchemes(t *testing.T) {
	sets := autoGridCorpus(77, 24)
	queries := autoGridCorpus(78, 6)

	for _, metric := range []Metric{SetSimilarity, SetContainment} {
		for _, simFn := range []Similarity{Jaccard, Dice, Cosine, Eds, NEds} {
			for _, alpha := range []float64{0, 0.5} {
				for _, shards := range []int{1, 3} {
					base := Config{
						Metric:     metric,
						Similarity: simFn,
						Delta:      0.6,
						Alpha:      alpha,
						Shards:     shards,
					}
					autoCfg := base
					autoCfg.Scheme = SchemeAuto
					autoEng, err := NewEngine(sets, autoCfg)
					if err != nil {
						t.Fatal(err)
					}
					autoPairs := autoEng.Discover()

					for _, fixed := range []Scheme{SchemeDichotomy, SchemeSkyline, SchemeWeighted, SchemeCombUnweighted} {
						fixedCfg := base
						fixedCfg.Scheme = fixed
						fixedEng, err := NewEngine(sets, fixedCfg)
						if err != nil {
							t.Fatal(err)
						}

						fixedPairs := fixedEng.Discover()
						if len(fixedPairs) != len(autoPairs) {
							t.Fatalf("%v/%v α=%v shards=%d: auto found %d pairs, %v found %d",
								metric, simFn, alpha, shards, len(autoPairs), fixed, len(fixedPairs))
						}
						for i := range autoPairs {
							a, f := autoPairs[i], fixedPairs[i]
							if a.R != f.R || a.S != f.S || a.Relatedness != f.Relatedness || a.MatchingScore != f.MatchingScore {
								t.Fatalf("%v/%v α=%v shards=%d vs %v: pair %d differs: auto=%+v fixed=%+v",
									metric, simFn, alpha, shards, fixed, i, a, f)
							}
						}

						for qi, q := range queries {
							am, err := autoEng.Search(q)
							if err != nil {
								t.Fatal(err)
							}
							fm, err := fixedEng.Search(q)
							if err != nil {
								t.Fatal(err)
							}
							if len(am) != len(fm) {
								t.Fatalf("%v/%v α=%v shards=%d vs %v: query %d: auto %d matches, fixed %d",
									metric, simFn, alpha, shards, fixed, qi, len(am), len(fm))
							}
							for i := range am {
								if am[i] != fm[i] {
									t.Fatalf("%v/%v α=%v shards=%d vs %v: query %d match %d differs: auto=%+v fixed=%+v",
										metric, simFn, alpha, shards, fixed, qi, i, am[i], fm[i])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSchemeAutoRecordsSelections checks the observability half of the Auto
// scheme: signatured passes must land in exactly one concrete scheme
// counter, and at α = 0 the selector short-circuits to Weighted.
func TestSchemeAutoRecordsSelections(t *testing.T) {
	sets := autoGridCorpus(79, 20)
	eng, err := NewEngine(sets, Config{Similarity: Jaccard, Delta: 0.6, Scheme: SchemeAuto})
	if err != nil {
		t.Fatal(err)
	}
	eng.Discover()
	st := eng.Stats()
	chosen := st.SchemeWeighted + st.SchemeSkyline + st.SchemeDichotomy + st.SchemeCombUnweighted
	if chosen != st.SearchPasses-st.FullScans {
		t.Fatalf("scheme selections %d != signatured passes %d", chosen, st.SearchPasses-st.FullScans)
	}
	if st.SchemeWeighted == 0 || st.SchemeSkyline != 0 || st.SchemeDichotomy != 0 {
		t.Fatalf("α=0 Auto must always pick Weighted, got %+v", st)
	}

	// At α > 0 Auto compares Skyline against Dichotomy per query.
	eng2, err := NewEngine(sets, Config{Similarity: Jaccard, Delta: 0.6, Alpha: 0.5, Scheme: SchemeAuto})
	if err != nil {
		t.Fatal(err)
	}
	eng2.Discover()
	st2 := eng2.Stats()
	if st2.SchemeWeighted != 0 {
		t.Fatalf("α>0 Auto never picks pure Weighted, got %+v", st2)
	}
	if st2.SchemeSkyline+st2.SchemeDichotomy != st2.SearchPasses-st2.FullScans {
		t.Fatalf("α>0 selections don't cover passes: %+v", st2)
	}
}
