// Benchmarks for the posting-storage tentpole: the query-side cost of
// compressed containers (heap lists vs adaptive containers behind the decode
// cache) and the cold-open cost of a durable engine (eager posting
// materialization vs the lazy zero-copy load). Results land in
// BENCH_storage.json; the postings-section-only open comparison lives in
// internal/index/storage_bench_test.go.
package silkmoth_test

import (
	"testing"

	"silkmoth"
	"silkmoth/internal/datagen"
)

func storageBenchCorpus() []silkmoth.Set {
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 400, Seed: 23})
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	return sets
}

func storageBenchConfig(compressed bool) silkmoth.Config {
	return silkmoth.Config{
		Metric:              silkmoth.SetSimilarity,
		Similarity:          silkmoth.Jaccard,
		Delta:               0.6,
		CompactionThreshold: -1,
		CompressedPostings:  compressed,
	}
}

func benchStorageSearch(b *testing.B, compressed bool) {
	sets := storageBenchCorpus()
	eng, err := silkmoth.NewEngine(sets, storageBenchConfig(compressed))
	if err != nil {
		b.Fatal(err)
	}
	queries := sets[1:33]
	// Warm once so the compressed run measures steady state (cache-hit
	// probes), not first-touch decodes.
	for _, q := range queries {
		if _, err := eng.Search(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchHeapPostings is the baseline: queries over materialized
// heap posting lists.
func BenchmarkSearchHeapPostings(b *testing.B) { benchStorageSearch(b, false) }

// BenchmarkSearchCompressedPostings is the same workload over adaptive
// compressed containers with the default decode-cache budget: steady-state
// probes hit the cache and stay zero-copy.
func BenchmarkSearchCompressedPostings(b *testing.B) { benchStorageSearch(b, true) }

func benchStorageColdOpen(b *testing.B, compressed bool) {
	sets := storageBenchCorpus()
	cfg := storageBenchConfig(compressed)
	cfg.DataDir = b.TempDir()
	eng, err := silkmoth.NewEngine(sets, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := silkmoth.NewEngine(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := loaded.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdOpenEager measures a full durable open of the uncompressed
// engine: collection decode plus one materialized posting list per
// vocabulary token.
func BenchmarkColdOpenEager(b *testing.B) { benchStorageColdOpen(b, false) }

// BenchmarkColdOpenLazy is the same open with compressed postings: the
// snapshot's container section is mmapped and wrapped without decoding;
// lists decode on first probe. Collection decode still dominates the
// absolute number — the isolated postings-section ratio is in
// internal/index BenchmarkSnapshotOpenPostings{Eager,Lazy}.
func BenchmarkColdOpenLazy(b *testing.B) { benchStorageColdOpen(b, true) }
