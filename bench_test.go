// Benchmarks regenerating every table and figure of the paper's evaluation
// (§8) at reduced scale: one benchmark per table/figure, with one
// sub-benchmark per (variant, parameter) cell, so `go test -bench=.`
// reproduces the relative shapes the paper reports — which scheme/filter
// wins, by roughly what factor, and where the crossovers fall. Run
// cmd/experiments for bigger corpora and the full funnel columns.
package silkmoth_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"silkmoth"
	"silkmoth/internal/core"
	"silkmoth/internal/datagen"
	"silkmoth/internal/dataset"
	"silkmoth/internal/harness"
	"silkmoth/internal/server"
	"silkmoth/internal/signature"
)

// benchScale keeps each cell in the tens-of-milliseconds range; shapes, not
// absolute numbers, are the point.
const benchScale = 0.15

const benchSeed = 1

// benchCell runs one workload configuration b.N times.
func benchCell(b *testing.B, w harness.Workload, opts core.Options, variant string) {
	b.Helper()
	b.ReportAllocs()
	var results int
	for i := 0; i < b.N; i++ {
		row := harness.RunConfig(w, opts, variant, "bench")
		results = row.Results
	}
	b.ReportMetric(float64(results), "results")
}

// BenchmarkTable3Datasets measures corpus construction and tokenization for
// the three applications (the paper's Table 3 datasets).
func BenchmarkTable3Datasets(b *testing.B) {
	apps := []struct {
		app          harness.App
		delta, alpha float64
	}{
		{harness.StringMatching, harness.DefaultDeltaString, harness.DefaultAlphaString},
		{harness.SchemaMatching, harness.DefaultDeltaSchema, harness.DefaultAlphaSchema},
		{harness.InclusionDependency, harness.DefaultDeltaInclusion, harness.DefaultAlphaInclusion},
	}
	for _, a := range apps {
		b.Run(a.app.String(), func(b *testing.B) {
			b.ReportAllocs()
			var sets int
			for i := 0; i < b.N; i++ {
				w := harness.BuildWorkload(a.app, benchScale, a.delta, a.alpha, benchSeed)
				sets = len(w.Coll.Sets)
				_ = dataset.ComputeStats(w.Coll)
			}
			b.ReportMetric(float64(sets), "sets")
		})
	}
}

// BenchmarkFigure4Overall compares NOOPT (FastJoin-style signature, no
// refinement, no reduction) against full-optimization SilkMoth on all three
// applications (Figure 4).
func BenchmarkFigure4Overall(b *testing.B) {
	apps := []struct {
		app          harness.App
		delta, alpha float64
	}{
		{harness.StringMatching, harness.DefaultDeltaString, harness.DefaultAlphaString},
		{harness.SchemaMatching, harness.DefaultDeltaSchema, harness.DefaultAlphaSchema},
		{harness.InclusionDependency, harness.DefaultDeltaInclusion, harness.DefaultAlphaInclusion},
	}
	for _, a := range apps {
		w := harness.BuildWorkload(a.app, benchScale, a.delta, a.alpha, benchSeed)
		b.Run(a.app.String()+"/NOOPT", func(b *testing.B) {
			benchCell(b, w, core.FastJoinOptions(w.Base.Metric, w.Base.Sim, a.delta, a.alpha), harness.VariantNoOpt)
		})
		b.Run(a.app.String()+"/OPT", func(b *testing.B) {
			benchCell(b, w, core.DefaultOptions(w.Base.Metric, w.Base.Sim, a.delta, a.alpha), harness.VariantOpt)
		})
	}
}

// benchFigure5 sweeps signature schemes over δ (filters and reduction off).
func benchFigure5(b *testing.B, app harness.App, alpha float64) {
	for _, delta := range harness.DeltaSweep {
		w := harness.BuildWorkload(app, benchScale, delta, alpha, benchSeed)
		for _, scheme := range []signature.Kind{
			signature.Weighted, signature.CombUnweighted, signature.Skyline, signature.Dichotomy,
		} {
			opts := core.Options{Delta: delta, Alpha: alpha, Scheme: scheme}
			b.Run(fmt.Sprintf("%s/delta=%.2f", scheme, delta), func(b *testing.B) {
				benchCell(b, w, opts, scheme.String())
			})
		}
	}
}

func BenchmarkFigure5aSchemesString(b *testing.B) {
	benchFigure5(b, harness.StringMatching, harness.DefaultAlphaString)
}

func BenchmarkFigure5bSchemesSchema(b *testing.B) {
	benchFigure5(b, harness.SchemaMatching, harness.DefaultAlphaSchema)
}

func BenchmarkFigure5cSchemesInclusion(b *testing.B) {
	benchFigure5(b, harness.InclusionDependency, harness.DefaultAlphaInclusion)
}

// benchFigure6 sweeps the refinement filters over δ (dichotomy signature,
// no reduction).
func benchFigure6(b *testing.B, app harness.App, alpha float64) {
	variants := []struct {
		name      string
		check, nn bool
	}{
		{harness.VariantNoFilter, false, false},
		{harness.VariantCheck, true, false},
		{harness.VariantNN, true, true},
	}
	for _, delta := range harness.DeltaSweep {
		w := harness.BuildWorkload(app, benchScale, delta, alpha, benchSeed)
		for _, v := range variants {
			opts := core.Options{
				Delta: delta, Alpha: alpha, Scheme: signature.Dichotomy,
				CheckFilter: v.check, NNFilter: v.nn,
			}
			b.Run(fmt.Sprintf("%s/delta=%.2f", v.name, delta), func(b *testing.B) {
				benchCell(b, w, opts, v.name)
			})
		}
	}
}

func BenchmarkFigure6aFiltersString(b *testing.B) {
	benchFigure6(b, harness.StringMatching, harness.DefaultAlphaString)
}

func BenchmarkFigure6bFiltersSchema(b *testing.B) {
	benchFigure6(b, harness.SchemaMatching, harness.DefaultAlphaSchema)
}

func BenchmarkFigure6cFiltersInclusion(b *testing.B) {
	benchFigure6(b, harness.InclusionDependency, harness.DefaultAlphaInclusion)
}

// BenchmarkFigure7Reduction measures reduction-based verification on
// inclusion dependency at α = 0 with ≥100-element references (Figure 7).
func BenchmarkFigure7Reduction(b *testing.B) {
	for _, delta := range harness.DeltaSweep {
		w := harness.BuildWorkload(harness.InclusionDependency, benchScale, delta, 0, benchSeed)
		w = harness.RefsFromLargeSets(w, 100, 25)
		for _, reduction := range []bool{false, true} {
			name := harness.VariantNoRed
			if reduction {
				name = harness.VariantRed
			}
			opts := core.Options{
				Delta: delta, Scheme: signature.Dichotomy,
				CheckFilter: true, NNFilter: true, Reduction: reduction,
			}
			b.Run(fmt.Sprintf("%s/delta=%.2f", name, delta), func(b *testing.B) {
				benchCell(b, w, opts, name)
			})
		}
	}
}

// BenchmarkFigure8aVsFastJoinTheta compares SilkMoth against the
// FastJoin-style baseline on string matching over δ at α = 0.8 (Figure 8a).
func BenchmarkFigure8aVsFastJoinTheta(b *testing.B) {
	for _, delta := range harness.DeltaSweep {
		w := harness.BuildWorkload(harness.StringMatching, benchScale, delta, harness.DefaultAlphaString, benchSeed)
		b.Run(fmt.Sprintf("SILKMOTH/delta=%.2f", delta), func(b *testing.B) {
			benchCell(b, w, core.DefaultOptions(w.Base.Metric, w.Base.Sim, delta, harness.DefaultAlphaString), harness.VariantSilkmoth)
		})
		b.Run(fmt.Sprintf("FASTJOIN/delta=%.2f", delta), func(b *testing.B) {
			benchCell(b, w, core.FastJoinOptions(w.Base.Metric, w.Base.Sim, delta, harness.DefaultAlphaString), harness.VariantFastJoin)
		})
	}
}

// BenchmarkFigure8bVsFastJoinAlpha is the α sweep at δ = 0.8 (Figure 8b);
// each α retokenizes with its own maximal sound q.
func BenchmarkFigure8bVsFastJoinAlpha(b *testing.B) {
	const delta = 0.8
	for _, alpha := range harness.AlphaSweepString {
		w := harness.BuildWorkload(harness.StringMatching, benchScale, delta, alpha, benchSeed)
		b.Run(fmt.Sprintf("SILKMOTH/alpha=%.2f", alpha), func(b *testing.B) {
			benchCell(b, w, core.DefaultOptions(w.Base.Metric, w.Base.Sim, delta, alpha), harness.VariantSilkmoth)
		})
		b.Run(fmt.Sprintf("FASTJOIN/alpha=%.2f", alpha), func(b *testing.B) {
			benchCell(b, w, core.FastJoinOptions(w.Base.Metric, w.Base.Sim, delta, alpha), harness.VariantFastJoin)
		})
	}
}

// benchFigure9 measures scalability over corpus size for each δ.
func benchFigure9(b *testing.B, app harness.App, alpha float64) {
	for _, mult := range []float64{0.5, 1, 2} {
		for _, delta := range []float64{0.7, 0.85} {
			w := harness.BuildWorkload(app, benchScale*mult, delta, alpha, benchSeed)
			opts := core.DefaultOptions(w.Base.Metric, w.Base.Sim, delta, alpha)
			b.Run(fmt.Sprintf("sets=%d/delta=%.2f", len(w.Coll.Sets), delta), func(b *testing.B) {
				benchCell(b, w, opts, harness.VariantSilkmoth)
			})
		}
	}
}

func BenchmarkFigure9aScaleString(b *testing.B) {
	benchFigure9(b, harness.StringMatching, harness.DefaultAlphaString)
}

func BenchmarkFigure9bScaleSchema(b *testing.B) {
	benchFigure9(b, harness.SchemaMatching, harness.DefaultAlphaSchema)
}

func BenchmarkFigure9cScaleInclusion(b *testing.B) {
	benchFigure9(b, harness.InclusionDependency, harness.DefaultAlphaInclusion)
}

// BenchmarkDiscoverParallel measures RELATED SET DISCOVERY at increasing
// worker counts over one schema-matching corpus — the speedup the
// silkmothd serving layer leans on. workers=1 is the serial baseline.
func BenchmarkDiscoverParallel(b *testing.B) {
	w := harness.BuildWorkload(harness.SchemaMatching, 0.5, 0.6, 0, benchSeed)
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		opts := core.DefaultOptions(w.Base.Metric, w.Base.Sim, 0.6, 0)
		opts.Concurrency = workers
		eng, err := core.NewEngine(w.Coll, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pairs int
			for i := 0; i < b.N; i++ {
				ps, derr := eng.DiscoverContext(context.Background(), w.Coll)
				if derr != nil {
					b.Fatal(derr)
				}
				pairs = len(ps)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// benchServer builds a silkmothd serving layer over a schema-matching
// corpus for throughput benchmarks.
func benchServer(b *testing.B, cacheSize int) (*server.Server, []string) {
	b.Helper()
	raws := datagen.WebTableSchemas(datagen.SchemaConfig{NumTables: 1500, Seed: benchSeed})
	sets := make([]silkmoth.Set, len(raws))
	for i, r := range raws {
		sets[i] = silkmoth.Set{Name: r.Name, Elements: r.Elements}
	}
	cfg := silkmoth.Config{
		Metric:     silkmoth.SetSimilarity,
		Similarity: silkmoth.Jaccard,
		Delta:      0.7,
	}
	eng, err := silkmoth.NewEngine(sets, cfg)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(eng, cfg, server.Options{CacheSize: cacheSize})
	// Pre-marshal a rotating query mix from real corpus sets.
	bodies := make([]string, 64)
	for i := range bodies {
		set := raws[(i*37)%len(raws)]
		var sb strings.Builder
		sb.WriteString(`{"set": {"elements": [`)
		for j, el := range set.Elements {
			if j > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%q", el)
		}
		sb.WriteString(`]}}`)
		bodies[i] = sb.String()
	}
	return srv, bodies
}

// BenchmarkServerSearchThroughput measures concurrent /v1/search request
// throughput through the full serving stack (JSON decode, worker pool,
// engine query, JSON encode), with the result cache defeated by rotating
// queries — the engine-bound number.
func BenchmarkServerSearchThroughput(b *testing.B) {
	srv, bodies := benchServer(b, -1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			req := httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(body))
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Errorf("code %d: %s", w.Code, w.Body)
				return
			}
		}
	})
}

// BenchmarkServerSearchCached measures the cache-hit path: identical
// queries served from the LRU without touching the engine.
func BenchmarkServerSearchCached(b *testing.B) {
	srv, bodies := benchServer(b, 1024)
	// Warm the cache.
	for _, body := range bodies {
		req := httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("warm: code %d: %s", w.Code, w.Body)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			req := httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(body))
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Errorf("code %d: %s", w.Code, w.Body)
				return
			}
		}
	})
}
