package silkmoth

import (
	"math"
	"strings"
	"testing"
)

// table1Sets mirrors the paper's Table 1: two address columns that refer to
// the same entities with dirty values.
func table1Sets() (location, address Set) {
	location = Set{Name: "Location", Elements: []string{
		"77 Mass Ave Boston MA",
		"5th St 02115 Seattle WA",
		"77 5th St Chicago IL",
	}}
	address = Set{Name: "Address", Elements: []string{
		"77 Massachusetts Avenue Boston MA",
		"Fifth Street Seattle MA 02115",
		"77 Fifth Street Chicago IL",
		"One Kendall Square Cambridge MA",
	}}
	return
}

func TestQuickstartDiscover(t *testing.T) {
	location, address := table1Sets()
	eng, err := NewEngine([]Set{location, address}, Config{
		Metric:     SetContainment,
		Similarity: Jaccard,
		Delta:      0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := eng.Discover()
	// Location (3 elems) is approximately contained in Address (4 elems):
	// matching 3/7 + 2/8 + 3/7 ≈ 1.107, containment ≈ 0.369 < 0.4 — so at
	// 0.4 nothing matches; at 0.3 the pair appears. Verify both.
	if len(pairs) != 0 {
		t.Fatalf("at δ=0.4 expected no pairs, got %+v", pairs)
	}
	eng2, err := NewEngine([]Set{location, address}, Config{
		Metric:     SetContainment,
		Similarity: Jaccard,
		Delta:      0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs = eng2.Discover()
	if len(pairs) != 1 {
		t.Fatalf("at δ=0.3 expected the Location⊑Address pair, got %+v", pairs)
	}
	p := pairs[0]
	if p.RName != "Location" || p.SName != "Address" {
		t.Errorf("pair = %+v", p)
	}
	if p.Relatedness < 0.3 || p.Relatedness > 1 {
		t.Errorf("relatedness = %v", p.Relatedness)
	}
}

func TestSearchReturnsSorted(t *testing.T) {
	sets := []Set{
		{Name: "exact", Elements: []string{"a b c", "d e f"}},
		{Name: "close", Elements: []string{"a b c", "d e g"}},
		{Name: "far", Elements: []string{"x y", "z w"}},
	}
	eng, err := NewEngine(sets, Config{Similarity: Jaccard, Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := eng.Search(Set{Elements: []string{"a b c", "d e f"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %+v", ms)
	}
	if ms[0].Name != "exact" || ms[1].Name != "close" {
		t.Errorf("order = %s, %s", ms[0].Name, ms[1].Name)
	}
	if ms[0].Relatedness != 1 {
		t.Errorf("exact relatedness = %v", ms[0].Relatedness)
	}
	if ms[0].MatchingScore != 2 {
		t.Errorf("exact matching score = %v", ms[0].MatchingScore)
	}
}

func TestEditSimilarityEngine(t *testing.T) {
	sets := []Set{
		{Name: "t1", Elements: []string{"Database", "Systems"}},
		{Name: "t2", Elements: []string{"Databose", "Systens"}}, // typos
		{Name: "t3", Elements: []string{"Quantum", "Physics"}},
	}
	eng, err := NewEngine(sets, Config{
		Similarity: Eds,
		Delta:      0.7,
		Alpha:      0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := eng.Discover()
	if len(pairs) != 1 || pairs[0].RName != "t1" || pairs[0].SName != "t2" {
		t.Errorf("edit pairs = %+v", pairs)
	}
}

func TestDiscoverAgainst(t *testing.T) {
	location, address := table1Sets()
	eng, err := NewEngine([]Set{address}, Config{
		Metric:     SetContainment,
		Similarity: Jaccard,
		Delta:      0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := eng.DiscoverAgainst([]Set{location})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].RName != "Location" || pairs[0].SName != "Address" {
		t.Errorf("cross pairs = %+v", pairs)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewEngine(nil, Config{}); err == nil {
		t.Error("zero Delta should fail")
	}
	if _, err := NewEngine(nil, Config{Delta: 2}); err == nil {
		t.Error("Delta > 1 should fail")
	}
	if _, err := NewEngine(nil, Config{Delta: 0.5, Metric: Metric(9)}); err == nil {
		t.Error("unknown metric should fail")
	}
	if _, err := NewEngine(nil, Config{Delta: 0.5, Similarity: Similarity(9)}); err == nil {
		t.Error("unknown similarity should fail")
	}
	if _, err := NewEngine(nil, Config{Delta: 0.5, Scheme: Scheme(9)}); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestAllSchemesAgree(t *testing.T) {
	location, address := table1Sets()
	sets := []Set{location, address,
		{Name: "noise", Elements: []string{"aa bb", "cc dd"}}}
	var counts []int
	for _, scheme := range []Scheme{SchemeDichotomy, SchemeSkyline, SchemeWeighted, SchemeCombUnweighted} {
		eng, err := NewEngine(sets, Config{
			Metric: SetContainment, Similarity: Jaccard,
			Delta: 0.3, Scheme: scheme,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(eng.Discover()))
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("schemes disagree: %v", counts)
		}
	}
}

func TestStatsExposed(t *testing.T) {
	location, address := table1Sets()
	eng, err := NewEngine([]Set{location, address}, Config{
		Similarity: Jaccard, Delta: 0.3, Metric: SetContainment,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Discover()
	st := eng.Stats()
	if st.SearchPasses == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLenAndSetName(t *testing.T) {
	eng, err := NewEngine([]Set{{Name: "only", Elements: []string{"x"}}}, Config{Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 1 || eng.SetName(0) != "only" {
		t.Error("Len/SetName broken")
	}
}

func TestAlphaThresholdChangesResults(t *testing.T) {
	// Two sets whose elements overlap weakly: with α = 0 the weak edges
	// accumulate past δ; with a high α they vanish.
	a := Set{Name: "A", Elements: []string{"p q r s", "t u v w"}}
	b := Set{Name: "B", Elements: []string{"p q x y", "t u z k"}}
	lowAlpha, err := NewEngine([]Set{a, b}, Config{Delta: 0.2, Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	highAlpha, err := NewEngine([]Set{a, b}, Config{Delta: 0.2, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(lowAlpha.Discover()) != 1 {
		t.Error("α=0 should relate A and B (each element pair has Jaccard 1/3)")
	}
	if len(highAlpha.Discover()) != 0 {
		t.Error("α=0.9 should zero the weak similarities")
	}
}

func TestMatchRelatednessRange(t *testing.T) {
	location, address := table1Sets()
	eng, err := NewEngine([]Set{location, address}, Config{
		Metric: SetContainment, Similarity: Jaccard, Delta: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := eng.Search(location)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Relatedness < 0.3-1e-9 || m.Relatedness > 1+1e-9 {
			t.Errorf("relatedness out of range: %+v", m)
		}
		if math.IsNaN(m.MatchingScore) {
			t.Errorf("NaN score: %+v", m)
		}
	}
}

func TestEmptyCollection(t *testing.T) {
	eng, err := NewEngine(nil, Config{Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pairs := eng.Discover(); len(pairs) != 0 {
		t.Errorf("empty collection pairs = %+v", pairs)
	}
	ms, err := eng.Search(Set{Elements: []string{"anything"}})
	if err != nil || len(ms) != 0 {
		t.Errorf("empty collection search = %v, %v", ms, err)
	}
}

func TestNamesPreserved(t *testing.T) {
	sets := []Set{
		{Name: "with spaces in name", Elements: []string{"a b"}},
		{Name: strings.Repeat("long", 50), Elements: []string{"a b"}},
	}
	eng, err := NewEngine(sets, Config{Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	pairs := eng.Discover()
	if len(pairs) != 1 || pairs[0].RName != sets[0].Name || pairs[0].SName != sets[1].Name {
		t.Errorf("names mangled: %+v", pairs)
	}
}
