package silkmoth

import (
	"context"
	"errors"
	"slices"
	"sync"
	"time"

	"silkmoth/internal/core"
	"silkmoth/internal/dataset"
	"silkmoth/internal/index"
	"silkmoth/internal/mmap"
	"silkmoth/internal/shard"
	"silkmoth/internal/tokens"
	"silkmoth/internal/wal"
)

// Engine indexes a collection of sets and answers related-set searches and
// discoveries over it. Build once, query many times; an Engine is safe for
// concurrent use, including Add concurrent with queries. Queries never
// block each other: the token dictionary is internally synchronized, so
// parallel searches proceed without a shared engine lock.
//
// With Config.Shards > 1 the collection is hash-partitioned across
// independently indexed shards and every query scatter-gathers across
// them; the Engine's API and results are unchanged.
type Engine struct {
	// Exactly one of eng (unsharded) and sh (sharded) is non-nil.
	eng  *core.Engine
	sh   *shard.Engine
	coll *dataset.Collection
	// mu serializes mutations (Add, Delete, Update, Compact) against
	// queries: mutators take the write side, queries the read side —
	// including query tokenization, which must not observe compaction's
	// dictionary slot recycling mid-flight.
	mu sync.RWMutex

	// Durability (nil/zero on a heap-only engine). store is the
	// snapshot/WAL pair under Config.DataDir; the rest records what
	// recovery found, surfaced through Stats.
	store     *wal.Store
	recovered bool
	replayed  int
	torn      bool
	// snapMap is the memory-mapped snapshot the index's compressed
	// containers alias after a zero-copy load; Close unshares the index
	// and unmaps it.
	snapMap *mmap.Mapping
}

// NewEngine tokenizes the collection according to cfg and builds the
// inverted index over it (or, with cfg.Shards > 1, the per-shard indexes,
// in parallel).
//
// With Config.DataDir set, NewEngine is also the recovery entry point: if
// the directory holds durable state, that state wins — sets is ignored and
// the engine is reconstructed from the latest snapshot plus WAL replay.
// Otherwise sets bootstraps the engine and its initial snapshot.
func NewEngine(sets []Set, cfg Config) (*Engine, error) {
	if cfg.DataDir != "" {
		fsys, err := wal.DirFS(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		return newDurableEngine(func() (*Engine, error) {
			return newHeapEngine(sets, cfg)
		}, cfg, fsys)
	}
	return newHeapEngine(sets, cfg)
}

// newHeapEngine is NewEngine without the durability layer: tokenize and
// index in memory.
func newHeapEngine(sets []Set, cfg Config) (*Engine, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	if opts.Delta <= 0 || opts.Delta > 1 {
		return nil, errors.New("silkmoth: Config.Delta must be in (0, 1]")
	}
	raws := toRaw(sets)
	dict := tokens.NewDictionary()
	var coll *dataset.Collection
	if opts.Sim.TokenMode() == dataset.ModeWord {
		coll = dataset.BuildWord(dict, raws)
	} else {
		if opts.Q == 0 {
			opts.Q = core.DefaultQ(opts.Delta, opts.Alpha)
		}
		coll = dataset.BuildQGram(dict, raws, opts.Q)
	}
	return newEngineOverColl(coll, cfg, opts)
}

// newEngineOverColl builds the unsharded or sharded engine over an
// already-tokenized collection, per cfg.Shards.
func newEngineOverColl(coll *dataset.Collection, cfg Config, opts core.Options) (*Engine, error) {
	if cfg.Shards > 1 {
		sh, err := shard.New(coll, cfg.Shards, opts)
		if err != nil {
			return nil, err
		}
		return &Engine{sh: sh, coll: coll}, nil
	}
	eng, err := core.NewEngine(coll, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng, coll: coll}, nil
}

// Shards returns the engine's shard count: 1 for an unsharded engine.
func (e *Engine) Shards() int {
	if e.sh != nil {
		return e.sh.Shards()
	}
	return 1
}

func toRaw(sets []Set) []dataset.RawSet {
	raws := make([]dataset.RawSet, len(sets))
	for i, s := range sets {
		raws[i] = dataset.RawSet{Name: s.Name, Elements: s.Elements}
	}
	return raws
}

// queryScratchPool recycles per-query tokenization buffers across all
// engines in the process: scratches carry no per-engine state (the
// dictionary is passed per call), and one pool keeps steady-state query
// traffic allocation-free regardless of how many engines share it.
var queryScratchPool = sync.Pool{New: func() any { return new(dataset.QueryScratch) }}

// tokenizeQuery tokenizes query sets against the engine's dictionary. The
// dictionary synchronizes its own interning; callers must hold at least the
// engine's read lock (against concurrent Add — and against compaction's
// key reclamation, which the lock orders before or after the whole query).
// Element keys are looked up, never interned (dataset.QueryScratch follows
// BuildQuery's contract), so query traffic cannot grow the key table.
//
// The returned collection is built on pooled scratch buffers; the caller
// must call release once nothing references it anymore — after the core
// matches are converted to public results, which alias nothing of the
// query.
func (e *Engine) tokenizeQuery(sets []Set) (qc *dataset.Collection, release func()) {
	qs := queryScratchPool.Get().(*dataset.QueryScratch)
	qc = qs.Build(e.coll.Dict, toRaw(sets), e.coll.Mode, e.coll.Q)
	return qc, func() { queryScratchPool.Put(qs) }
}

// Search returns every set in the engine's collection related to ref,
// sorted by descending relatedness (ties by index). This is the paper's
// RELATED SET SEARCH (Problem 2). Options customize the single query:
// WithK truncates to the top k, WithScheme pins the signature scheme,
// WithDelta overrides δ, WithExplain captures the query's pruning funnel,
// and the filter toggles stress individual stages.
func (e *Engine) Search(ref Set, opts ...QueryOption) ([]Match, error) {
	return e.SearchContext(context.Background(), ref, opts...)
}

// SearchContext is Search with cancellation: the pass aborts and returns
// ctx.Err() when ctx is done. With Config.Concurrency > 1 the pass's
// candidate verification is sharded across a worker pool.
func (e *Engine) SearchContext(ctx context.Context, ref Set, opts ...QueryOption) ([]Match, error) {
	res, err := e.searchResult(ctx, ref, opts, false)
	return res.Matches, err
}

// Explain runs one search and returns its full Result: the matches plus
// the Explain metadata describing how they were computed — chosen concrete
// scheme, signature size, per-stage survivor counts, wall time. It is
// Search with an implied WithExplain; explicit options compose as usual.
func (e *Engine) Explain(ref Set, opts ...QueryOption) (Result, error) {
	return e.ExplainContext(context.Background(), ref, opts...)
}

// ExplainContext is Explain with cancellation.
func (e *Engine) ExplainContext(ctx context.Context, ref Set, opts ...QueryOption) (Result, error) {
	return e.searchResult(ctx, ref, opts, true)
}

// searchResult runs one search under the compiled options — every public
// single-query search path lands here. forceExplain attaches a capture
// even when no WithExplain option did (the Explain entry points).
func (e *Engine) searchResult(ctx context.Context, ref Set, opts []QueryOption, forceExplain bool) (Result, error) {
	qo, err := compileOptions(opts)
	if err != nil {
		return Result{}, err
	}
	if forceExplain && qo.explain == nil {
		qo.explain = &Explain{}
	}
	q, ps := qo.coreQuery()
	var start time.Time
	if qo.explain != nil {
		start = time.Now()
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	qc, release := e.tokenizeQuery([]Set{ref})
	defer release()
	r := &qc.Sets[0]
	var ms []core.Match
	switch {
	case e.sh != nil && qo.hasK:
		// The sharded top-k path answers with k·Shards heap-merged
		// candidates instead of a full sort.
		ms, err = e.sh.SearchTopKQueryContext(ctx, r, qo.k, q)
	case e.sh != nil:
		ms, err = e.sh.SearchQueryContext(ctx, r, q)
	default:
		ms, err = e.eng.SearchQueryContext(ctx, r, q)
	}
	if err != nil {
		return Result{}, err
	}
	out := e.finishMatches(ms)
	if qo.hasK && len(out) > qo.k {
		out = out[:qo.k] // matches are canonical, so the prefix is the top k
	}
	res := Result{Matches: out}
	if qo.explain != nil {
		qo.finishExplain(ps, time.Since(start))
		res.Explain = qo.explain
	}
	return res, nil
}

// finishMatches rewrites core matches into the public form and sorts them
// canonically — the one post-processing step every search path (serial,
// sharded, batch) shares. The sharded engine's merged output is already
// canonical, and the canonical order is total (indices are unique), so
// re-sorting it is a deterministic no-op; hoisting the sort here keeps the
// two engine shapes on identical code. Callers must hold at least the
// read lock.
func (e *Engine) finishMatches(ms []core.Match) []Match {
	out := e.toMatches(ms)
	sortMatches(out)
	return out
}

// toMatches rewrites core matches into the public form, resolving names
// from the engine's collection. Callers must hold at least the read lock.
func (e *Engine) toMatches(ms []core.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{
			Index:         m.Set,
			Name:          e.coll.Sets[m.Set].Name,
			Relatedness:   m.Relatedness,
			MatchingScore: m.Score,
		}
	}
	return out
}

// sortMatches orders public matches canonically: descending relatedness,
// ties by ascending index.
func sortMatches(ms []Match) {
	slices.SortFunc(ms, func(a, b Match) int {
		if a.Relatedness != b.Relatedness {
			if a.Relatedness > b.Relatedness {
				return -1
			}
			return 1
		}
		return a.Index - b.Index
	})
}

// Discover returns all related pairs within the engine's collection — the
// paper's RELATED SET DISCOVERY (Problem 1) with R = S. Under SetSimilarity
// each unordered pair is reported once (R < S); under SetContainment every
// ordered pair ⟨R, S⟩ with |R| ≤ |S| is considered. Pairs are sorted by
// (R, S).
// Options apply to every reference pass of the discovery (WithK is a
// search-shaped option and is ignored here); a WithExplain capture sums
// the funnels of all passes. Discover's error-free signature swallows
// failures — including option-validation errors like an out-of-range
// WithDelta — as an empty result; callers passing options should prefer
// DiscoverContext, which reports them.
func (e *Engine) Discover(opts ...QueryOption) []Pair {
	ps, _ := e.DiscoverContext(context.Background(), opts...)
	return ps
}

// DiscoverContext is Discover with cancellation: it aborts and returns
// ctx.Err() when ctx is done. Reference passes run on Config.Concurrency
// workers; the sorted output is identical to the serial path's.
func (e *Engine) DiscoverContext(ctx context.Context, opts ...QueryOption) ([]Pair, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.discoverLocked(ctx, e.coll, opts)
}

// discoverLocked compiles the per-query options and runs one discovery
// with refs as the R side (the engine's own collection selects self-join
// semantics). Callers hold the read lock.
func (e *Engine) discoverLocked(ctx context.Context, refs *dataset.Collection, opts []QueryOption) ([]Pair, error) {
	qo, err := compileOptions(opts)
	if err != nil {
		return nil, err
	}
	q, psc := qo.coreQuery()
	var start time.Time
	if qo.explain != nil {
		start = time.Now()
	}
	ps, err := e.discoverPairs(ctx, refs, q)
	if err != nil {
		return nil, err
	}
	out := e.toPairs(ps, refs)
	qo.finishExplain(psc, time.Since(start))
	return out, nil
}

// discoverPairs runs core-level discovery on whichever engine backs e.
// Passing e.coll itself selects self-join semantics in both backends.
// Callers must hold at least the read lock.
func (e *Engine) discoverPairs(ctx context.Context, refs *dataset.Collection, q *core.Query) ([]core.Pair, error) {
	if e.sh != nil {
		return e.sh.DiscoverQueryContext(ctx, refs, q)
	}
	return e.eng.DiscoverQueryContext(ctx, refs, q)
}

// DiscoverAgainst finds all related pairs ⟨R, S⟩ with R from refs and S from
// the engine's collection. Options apply to every reference pass.
func (e *Engine) DiscoverAgainst(refs []Set, opts ...QueryOption) ([]Pair, error) {
	return e.DiscoverAgainstContext(context.Background(), refs, opts...)
}

// DiscoverAgainstContext is DiscoverAgainst with cancellation.
func (e *Engine) DiscoverAgainstContext(ctx context.Context, refs []Set, opts ...QueryOption) ([]Pair, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	qc, release := e.tokenizeQuery(refs)
	defer release()
	return e.discoverLocked(ctx, qc, opts)
}

// toPairs rewrites core pairs into the public form and sorts them by
// (R, S) — like finishMatches, the ordering runs unconditionally so both
// engine shapes share one post-processing path (the order is total, so
// re-sorting the sharded engine's pre-sorted output changes nothing).
func (e *Engine) toPairs(ps []core.Pair, refs *dataset.Collection) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{
			R: p.R, S: p.S,
			RName:         refs.Sets[p.R].Name,
			SName:         e.coll.Sets[p.S].Name,
			Relatedness:   p.Relatedness,
			MatchingScore: p.Score,
		}
	}
	slices.SortFunc(out, func(a, b Pair) int {
		if a.R != b.R {
			return a.R - b.R
		}
		return a.S - b.S
	})
	return out
}

// Len returns the number of live sets in the engine's collection. Deleted
// sets no longer count, though their ids stay reserved (ids are stable and
// never reused for a different set).
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sh != nil {
		return e.sh.Len()
	}
	return e.eng.LiveCount()
}

// SetName returns the name of collection set i.
func (e *Engine) SetName(i int) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.coll.Sets[i].Name
}

// Stats returns the engine's cumulative pruning funnel (summed across
// shards on a sharded engine) and collection lifecycle counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var st core.StatsSnapshot
	out := Stats{}
	if e.sh != nil {
		st = e.sh.Stats()
		out.Live = e.sh.Len()
		out.Tombstones = e.sh.Tombstones()
		out.Compactions = e.sh.Compactions()
	} else {
		st = e.eng.Stats()
		out.Live = e.eng.LiveCount()
		out.Tombstones = e.eng.Tombstones()
		out.Compactions = e.eng.Compactions()
	}
	out.SearchPasses = st.SearchPasses
	out.FullScans = st.FullScans
	out.SigTokens = st.SigTokens
	out.Candidates = st.Candidates
	out.AfterCheck = st.AfterCheck
	out.CheckPruned = st.CheckPruned
	out.AfterNN = st.AfterNN
	out.NNPruned = st.NNPruned
	out.Verified = st.Verified
	out.SchemeWeighted = st.SchemeWeighted
	out.SchemeSkyline = st.SchemeSkyline
	out.SchemeDichotomy = st.SchemeDichotomy
	out.SchemeCombUnweighted = st.SchemeCombUnweighted
	out.TimedPasses = st.TimedPasses
	out.Stages = StageTimes{
		Signature: time.Duration(st.SigNanos),
		Collect:   time.Duration(st.CollectNanos),
		Refine:    time.Duration(st.RefineNanos),
		Verify:    time.Duration(st.VerifyNanos),
	}
	var ps index.StorageStats
	if e.sh != nil {
		out.Stragglers = e.sh.Stragglers()
		ps = e.sh.Storage()
	} else {
		ps = e.eng.Storage()
	}
	out.CompressedPostings = ps.Compressed
	out.Postings = ps.Postings
	out.PostingHeapBytes = ps.HeapBytes
	out.PostingEncodedBytes = ps.EncodedBytes
	out.PostingResidentBytes = ps.ResidentBytes
	out.PostingCacheHits = ps.CacheHits
	out.PostingCacheMisses = ps.CacheMisses
	out.PostingDecodeErrors = ps.DecodeErrors
	out.SnapshotMapped = e.snapMap != nil && e.snapMap.Mapped()
	if e.store != nil {
		out.Snapshots = e.store.Snapshots()
		out.WALRecords = e.store.Appended()
		out.WALReplayed = e.replayed
		out.RecoveredSnapshot = e.recovered
		out.WALTornTail = e.torn
	}
	return out
}
