package silkmoth

import (
	"fmt"
	"time"

	"silkmoth/internal/core"
)

// QueryOption customizes a single query without touching the engine's
// configuration. Every query method accepts a trailing list of options —
// Search, SearchTopK, SearchBatch, Discover, DiscoverAgainst, Explain, and
// the package-level Compare — and a call with no options behaves exactly
// as the engine was configured. Options apply in order, so a later option
// overrides an earlier one of the same kind.
//
// Overrides come in two flavors. WithScheme only changes how the inverted
// index is probed — results are identical for every valid scheme, so
// pinning a scheme is a performance and auditing knob. WithDelta and the
// filter toggles change or stress the result set itself: WithDelta(d)
// returns exactly what an engine built with Delta = d would, and disabling
// filters must never change results (the exactness guarantee), only cost.
type QueryOption func(*queryOptions) error

// queryOptions is the compiled form of a query's option list.
type queryOptions struct {
	k         int
	hasK      bool
	scheme    Scheme
	hasScheme bool
	delta     float64
	hasDelta  bool
	check     core.Toggle
	nn        core.Toggle
	reduction core.Toggle
	explain   *Explain
}

// WithK truncates the query's matches to the k most related (k ≥ 1), like
// SearchTopK. On a sharded engine the heap-merged top-k path answers it
// with k·Shards merged candidates instead of a full sort.
func WithK(k int) QueryOption {
	return func(qo *queryOptions) error {
		if k < 1 {
			return fmt.Errorf("silkmoth: WithK requires k >= 1, got %d", k)
		}
		qo.k, qo.hasK = k, true
		return nil
	}
}

// WithScheme pins this query's signature scheme, overriding the engine's
// (including SchemeAuto's per-query cost-based choice). Schemes only
// decide how much of the index is probed, so matches are identical under
// every scheme; pair it with WithExplain to audit the probe cost of each.
func WithScheme(s Scheme) QueryOption {
	return func(qo *queryOptions) error {
		if _, err := s.kind(); err != nil {
			return err
		}
		qo.scheme, qo.hasScheme = s, true
		return nil
	}
}

// WithDelta overrides the relatedness threshold δ ∈ (0, 1] for this query.
// Matches are exactly those of an engine built with Config.Delta = d.
func WithDelta(d float64) QueryOption {
	return func(qo *queryOptions) error {
		if d <= 0 || d > 1 {
			return fmt.Errorf("silkmoth: WithDelta requires δ in (0, 1], got %v", d)
		}
		qo.delta, qo.hasDelta = d, true
		return nil
	}
}

// WithExplain captures how the query executed into *dst: the concrete
// signature scheme that probed the index, the per-stage pruning funnel
// (signature tokens → candidates → check filter → NN filter → exact
// verification), and wall time. dst is written once, when the query
// returns successfully. Capture is cheap — a handful of atomic adds per
// stage — but explained server requests bypass the result cache.
func WithExplain(dst *Explain) QueryOption {
	return func(qo *queryOptions) error {
		if dst == nil {
			return fmt.Errorf("silkmoth: WithExplain requires a non-nil destination")
		}
		qo.explain = dst
		return nil
	}
}

// WithCheckFilter enables or disables the check filter (§5.1) for this
// query. Disabling a filter never changes matches — only how many
// candidates reach exact verification.
func WithCheckFilter(enabled bool) QueryOption {
	return func(qo *queryOptions) error {
		qo.check = toggle(enabled)
		return nil
	}
}

// WithNNFilter enables or disables the nearest-neighbor filter (§5.2) for
// this query. Enabling it implies the check filter, whose state it
// consumes.
func WithNNFilter(enabled bool) QueryOption {
	return func(qo *queryOptions) error {
		qo.nn = toggle(enabled)
		return nil
	}
}

// WithReduction enables or disables reduction-based verification (§5.3)
// for this query. The reduction stays off where its metric requirements
// fail (α ≠ 0, or a similarity whose dual distance is not a metric),
// regardless of the toggle.
func WithReduction(enabled bool) QueryOption {
	return func(qo *queryOptions) error {
		qo.reduction = toggle(enabled)
		return nil
	}
}

func toggle(enabled bool) core.Toggle {
	if enabled {
		return core.ToggleOn
	}
	return core.ToggleOff
}

// compileOptions folds an option list into its compiled form, validating
// each option's arguments.
func compileOptions(opts []QueryOption) (queryOptions, error) {
	var qo queryOptions
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&qo); err != nil {
			return queryOptions{}, err
		}
	}
	return qo, nil
}

// coreQuery lowers the compiled options into the core engine's per-query
// override form, allocating the stats capture when explain was requested.
// It returns nil when nothing was overridden or captured, which keeps
// option-less queries on the exact pre-options code path.
func (qo *queryOptions) coreQuery() (*core.Query, *core.PassStats) {
	if !qo.hasScheme && !qo.hasDelta && qo.check == core.ToggleInherit &&
		qo.nn == core.ToggleInherit && qo.reduction == core.ToggleInherit &&
		qo.explain == nil {
		return nil, nil
	}
	q := &core.Query{
		Delta:       qo.delta,
		CheckFilter: qo.check,
		NNFilter:    qo.nn,
		Reduction:   qo.reduction,
	}
	if qo.hasScheme {
		kind, err := qo.scheme.kind()
		if err != nil {
			// WithScheme validated already; this is unreachable.
			panic(err)
		}
		q.Scheme, q.SchemeSet = kind, true
	}
	var ps *core.PassStats
	if qo.explain != nil {
		ps = &core.PassStats{}
		q.Stats = ps
	}
	return q, ps
}

// finishExplain writes the capture into the caller's Explain destination.
// elapsed < 0 means "use the capture's own accumulated wall time" (batch
// items time themselves; single queries are timed around the whole call).
func (qo *queryOptions) finishExplain(ps *core.PassStats, elapsed time.Duration) {
	if qo.explain == nil || ps == nil {
		return
	}
	if elapsed < 0 {
		elapsed = ps.Elapsed()
	}
	*qo.explain = explainFromPass(ps, elapsed)
}

// Explain describes how one query executed: which concrete signature
// scheme probed the inverted index, how many sets each pipeline stage let
// through, and how long the whole query took. Capture one with
// WithExplain or the Engine.Explain method; serving layers expose the same
// shape via /v1/explain.
//
// The funnel is internally consistent by construction:
// Candidates = AfterCheck + CheckPruned, AfterCheck = AfterNN + NNPruned,
// and every AfterNN survivor is Verified (full-scan passes verify without
// entering the funnel).
type Explain struct {
	// Scheme is the concrete signature scheme that probed the index —
	// the per-query resolution under SchemeAuto. When the query fanned
	// out into passes that chose differently (shards, batch references)
	// it is "mixed" and Schemes has the split; a query with no valid
	// signature reports "full-scan".
	Scheme string
	// Schemes counts signatured passes by concrete scheme name. Nil when
	// no pass generated a signature.
	Schemes map[string]int64
	// Passes counts the search passes the query fanned out into (shards ×
	// references); FullScans counts those with no valid signature.
	Passes    int64
	FullScans int64
	// SigTokens is the number of signature tokens generated — the index
	// probe volume the scheme selection minimizes.
	SigTokens int64
	// Candidates counts sets matched by signature tokens before
	// refinement; AfterCheck/CheckPruned split them by the check filter,
	// AfterNN/NNPruned split the survivors by the nearest-neighbor
	// filter, and Verified counts exact maximum-matching computations.
	Candidates  int64
	AfterCheck  int64
	CheckPruned int64
	AfterNN     int64
	NNPruned    int64
	Verified    int64
	// Elapsed is the query's wall time (for a batch item, that item's own
	// pass time).
	Elapsed time.Duration
	// Stages splits the query's pass time by pipeline stage — where inside
	// the funnel the wall time went. Explained queries time every pass, so
	// the four durations sum over all of Passes (they total less than
	// Elapsed, which also covers tokenization, fan-out, and merging).
	Stages StageTimes
}

// explainFromPass converts a core stats capture into the public shape.
func explainFromPass(ps *core.PassStats, elapsed time.Duration) Explain {
	ex := Explain{
		Passes:      ps.Passes,
		FullScans:   ps.FullScans,
		SigTokens:   ps.SigTokens,
		Candidates:  ps.Candidates,
		AfterCheck:  ps.AfterCheck,
		CheckPruned: ps.CheckPruned,
		AfterNN:     ps.AfterNN,
		NNPruned:    ps.NNPruned,
		Verified:    ps.Verified,
		Elapsed:     elapsed,
		Stages: StageTimes{
			Signature: time.Duration(ps.SigNanos),
			Collect:   time.Duration(ps.CollectNanos),
			Refine:    time.Duration(ps.RefineNanos),
			Verify:    time.Duration(ps.VerifyNanos),
		},
	}
	type schemeCount struct {
		name  string
		count int64
	}
	counts := []schemeCount{
		{SchemeWeighted.String(), ps.SchemeWeighted},
		{SchemeSkyline.String(), ps.SchemeSkyline},
		{SchemeDichotomy.String(), ps.SchemeDichotomy},
		{SchemeCombUnweighted.String(), ps.SchemeCombUnweighted},
	}
	var total int64
	var last string
	distinct := 0
	for _, sc := range counts {
		if sc.count == 0 {
			continue
		}
		if ex.Schemes == nil {
			ex.Schemes = make(map[string]int64, 2)
		}
		ex.Schemes[sc.name] = sc.count
		total += sc.count
		last = sc.name
		distinct++
	}
	switch {
	case distinct == 1 && ex.FullScans == 0:
		ex.Scheme = last
	case total == 0 && ex.FullScans > 0:
		ex.Scheme = "full-scan"
	case total > 0:
		ex.Scheme = "mixed"
	}
	return ex
}

// Result is a query's full outcome: its matches plus, when requested, the
// explain metadata describing how they were computed.
type Result struct {
	// Matches is the query's answer, sorted by descending relatedness
	// (ties by ascending collection index).
	Matches []Match
	// Explain is non-nil when the query captured its execution (the
	// Explain method, a WithExplain option, or a per-item batch capture).
	Explain *Explain
}

// BatchQuery is one item of a per-item batch: a reference set plus the
// options shaping its query. SearchBatchQueries runs many of them in one
// engine pass, so mixed workloads can pin schemes, adjust k or δ, and
// capture explains item by item.
type BatchQuery struct {
	Set Set
	// Options shape this item alone. WithExplain destinations must be
	// distinct per item, or later items overwrite earlier captures.
	Options []QueryOption
}
